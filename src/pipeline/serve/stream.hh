/**
 * @file
 * The serve wire's integrity-and-chaos layer: checksummed frames
 * plus a seeded fault injector for the socket boundary.
 *
 * Framing. Protocol v2 frames are [u32 length | u64 checksum |
 * payload]: the checksum is hashBytes() of the payload, verified on
 * every read. A flipped bit anywhere on the wire -- payload, length
 * prefix or the checksum itself -- is therefore *detected*: it
 * surfaces as a checksum mismatch, a mis-framed read that the
 * mid-frame deadline cuts short, or an oversized-length rejection,
 * never as silently corrupted message bytes. That detection is what
 * lets the retry client treat every torn or corrupted frame as a
 * connection failure and re-submit idempotently.
 *
 * Mid-frame deadlines. readFrame() waits for the *first* byte of a
 * frame without any timeout (an idle peer is healthy), but once a
 * frame has started, every subsequent byte must arrive within the
 * caller's budget. A peer that dribbles one byte and stalls -- the
 * classic slow-loris shape -- costs one read timeout and a closed
 * connection, never a wedged reader thread.
 *
 * Chaos. ChaosStream mirrors support/fault's FaultInjector at the
 * socket layer: a seeded, deterministic coin-flip stream consulted at
 * named sites on each frame send/receive. Sites: inject a delay,
 * split the send into byte-dribbles, flip one random bit of the wire
 * image, stall mid-frame (trips the peer's read deadline), or shut
 * the socket down partway through a frame (abrupt disconnect). One
 * coin is drawn per site per frame, so a stream's fault pattern is a
 * pure function of its config and frame sequence. Each ChaosStream
 * serializes its draws internally and may be shared by the writer
 * threads of one connection; cross-thread interleaving of *frames*
 * still varies run to run, which is exactly the nondeterminism the
 * recovery machinery must absorb.
 */

#ifndef CAMS_PIPELINE_SERVE_STREAM_HH
#define CAMS_PIPELINE_SERVE_STREAM_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "support/random.hh"

namespace cams
{

/** Bytes of framing around every payload (u32 length + u64 hash). */
constexpr size_t serveFrameOverhead = 12;

/** Named fault sites of the socket chaos layer. */
enum class ChaosSite
{
    Delay,        ///< sleep before touching the socket
    PartialWrite, ///< dribble the frame in tiny chunks
    BitFlip,      ///< flip one random bit of the wire image
    Stall,        ///< send half the frame, sleep, send the rest
    Disconnect,   ///< shut the socket down mid-frame
};

/** Number of ChaosSite values. */
constexpr int numChaosSites = 5;

/** Stable snake_case name of a chaos site. */
const char *chaosSiteName(ChaosSite site);

/** Per-site trip probabilities plus the coin-flip seed. */
struct ChaosConfig
{
    /** Seed of the stream's private coin-flip sequence. */
    uint64_t seed = 1;

    double pDelay = 0.0;        ///< Delay trip probability
    double delayMs = 2.0;       ///< maximum injected delay
    double pPartialWrite = 0.0; ///< PartialWrite trip probability
    double pBitFlip = 0.0;      ///< BitFlip trip probability
    double pStall = 0.0;        ///< Stall trip probability
    double stallMs = 50.0;      ///< mid-frame stall length
    double pDisconnect = 0.0;   ///< Disconnect trip probability

    /** True when any site can trip at all. */
    bool any() const;

    /** Same probability at every site (convenience for CLIs). */
    static ChaosConfig uniform(double p, uint64_t seed = 1);
};

/**
 * Frame codec over one socket, with optional chaos injection. A
 * default-constructed stream is a plain, fault-free codec; call
 * enableChaos() (before first use) to arm the injector.
 */
class ServeStream
{
  public:
    ServeStream() = default;

    /** Arms the fault injector with the given config. */
    void enableChaos(const ChaosConfig &config);

    /** True when the injector is armed. */
    bool chaosEnabled() const { return chaosOn_; }

    /**
     * Sends one checksummed frame. Under chaos this may delay,
     * dribble, corrupt or abort the send; an injected disconnect
     * returns false with a "chaos:" error, exactly like a real torn
     * connection.
     */
    bool writeFrame(int fd, const std::string &payload,
                    std::string &error);

    /**
     * Reads one checksummed frame. Waits for the first byte without
     * a deadline; once the frame has started, every byte must arrive
     * within @p midFrameTimeoutMs (0 = no deadline). On a deadline
     * expiry @p timedOut (when given) is set alongside the error.
     * A checksum mismatch or an over-@p maxBytes length is an error
     * with the frame consumed-as-far-as-possible; @p cleanEof
     * distinguishes an orderly close between frames.
     */
    bool readFrame(int fd, std::string &payload, uint32_t maxBytes,
                   double midFrameTimeoutMs, std::string &error,
                   bool *cleanEof = nullptr, bool *timedOut = nullptr);

    /** Faults injected so far, across all sites. */
    long injectedFaults() const;

    /** Faults injected at one site so far. */
    long injectedAt(ChaosSite site) const;

  private:
    struct Plan
    {
        bool delay = false;
        double delayMs = 0.0;
        bool partial = false;
        bool bitFlip = false;
        size_t flipBit = 0;
        bool stall = false;
        bool disconnect = false;
        size_t cutAt = 0;
    };

    /** Draws this frame's coins (and value rolls) under the mutex. */
    Plan drawSendPlan(size_t wireBytes);
    Plan drawRecvPlan();

    mutable std::mutex mutex_;
    Rng rng_;
    ChaosConfig config_;
    bool chaosOn_ = false;
    long injected_[numChaosSites] = {};
};

} // namespace cams

#endif // CAMS_PIPELINE_SERVE_STREAM_HH
