/**
 * @file
 * CamsClient: the resilient camsd client. Wraps ServeClient with the
 * recovery machinery a production caller needs to survive a flaky
 * wire and a crash-restarting daemon:
 *
 *  - reconnect with capped exponential backoff plus jitter, bounded
 *    by a per-outage budget;
 *  - idempotent resubmission: every Submit carries a retryKey, all
 *    still-pending requests are resubmitted after a reconnect, and
 *    the server's dedup table guarantees a retried request never
 *    compiles twice and never returns divergent bytes;
 *  - duplicate suppression: when a retry races the original answer,
 *    the second terminal for an id is counted and dropped, never
 *    delivered twice;
 *  - Shed-aware retries honoring the server's retry-after hint
 *    (opt-in, so load accounting can keep Shed as a terminal
 *    outcome);
 *  - deadline-aware retry budgets: a request stops being retried
 *    once its end-to-end budget or resubmission cap is spent and
 *    fails with a synthesized Error instead of retrying forever.
 *
 * Delivery contract: every submitted id receives *exactly one*
 * terminal callback -- Result, Cancelled, Shed (when shed retries
 * are off), or a synthesized Error once retries are exhausted --
 * no matter how many times the connection dies in between.
 * Callbacks run on the client's internal threads; handlers must be
 * thread-safe and must not call back into the client.
 */

#ifndef CAMS_PIPELINE_SERVE_RETRY_CLIENT_HH
#define CAMS_PIPELINE_SERVE_RETRY_CLIENT_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "pipeline/serve/client.hh"
#include "pipeline/serve/proto.hh"
#include "pipeline/serve/stream.hh"

namespace cams
{

/** Backoff and retry-budget knobs of CamsClient. */
struct RetryPolicy
{
    /** Resubmissions allowed per request before giving up. */
    int maxResubmits = 32;

    double initialBackoffMs = 10.0; ///< first backoff step
    double maxBackoffMs = 1000.0;   ///< backoff cap
    double backoffFactor = 2.0;     ///< growth per step
    double jitter = 0.25;           ///< randomized backoff fraction

    /** Wall-clock budget per connect outage before giving up. */
    double connectBudgetMs = 30000.0;

    /** End-to-end retry budget per request; 0 = unbounded. */
    double requestBudgetMs = 0.0;

    /** Mid-frame read deadline on the connection (0 = none). */
    double readTimeoutMs = 30000.0;

    /**
     * Resubmit requests the server sheds, after its retry-after
     * hint. Off by default so callers that account load (the open
     * loop generator's overload phases) keep Shed as a terminal.
     */
    bool retryOnShed = false;

    /** Seed of the backoff jitter stream. */
    uint64_t seed = 1;
};

/** Connection parameters of one CamsClient. */
struct CamsClientConfig
{
    std::string socketPath;
    std::string tenant = "default";
    RetryPolicy retry;

    /** Armed on every connection when any site can trip. */
    ChaosConfig chaos;
};

/** Resilient, auto-reconnecting camsd client. */
class CamsClient
{
  public:
    /** Recovery actions, observable via the event handler. */
    enum class Event
    {
        Reconnect,           ///< connection re-established
        Resubmit,            ///< pending request sent again
        ShedRetry,           ///< shed request scheduled for resubmit
        DuplicateSuppressed, ///< second terminal for an id dropped
        GaveUp,              ///< retries exhausted, Error synthesized
    };

    /** Totals across the client's lifetime. */
    struct Stats
    {
        long reconnects = 0;
        long resubmissions = 0;
        long shedRetries = 0;
        long duplicatesSuppressed = 0;
        long gaveUp = 0;
    };

    /** Receives each request's single terminal message. */
    using TerminalHandler = std::function<void(const ServerMsg &)>;

    /** Observes recovery events (id 0 = connection-level). */
    using EventHandler = std::function<void(uint64_t id, Event event)>;

    CamsClient() = default;
    ~CamsClient();

    CamsClient(const CamsClient &) = delete;
    CamsClient &operator=(const CamsClient &) = delete;

    /** Install handlers before start(). */
    void setTerminalHandler(TerminalHandler handler);
    void setEventHandler(EventHandler handler);

    /**
     * Connects (retrying within the connect budget) and starts the
     * reader and retry threads. False with @p error set when the
     * first connection cannot be established in budget.
     */
    bool start(const CamsClientConfig &config, std::string &error);

    /**
     * Owns @p msg until its terminal callback fires. Assigns a
     * fresh retryKey when the caller left it 0. Never blocks on a
     * dead connection: the request is queued and rides the next
     * reconnect. False only when the client is closed or has
     * exhausted a connect budget.
     */
    bool submit(SubmitMsg msg);

    /**
     * Blocking convenience: submit() and wait for the terminal,
     * which is returned in @p out instead of the terminal handler.
     */
    bool compile(SubmitMsg msg, ServerMsg &out, std::string &error);

    /** Best-effort Cancel of an in-flight request. */
    void cancel(uint64_t id);

    /** True until a connect budget is exhausted or close() runs. */
    bool healthy() const;

    /** Requests submitted but not yet terminal. */
    size_t pendingCount() const;

    /** Server-reported sizing from the latest handshake. */
    uint32_t serverWorkers() const;
    uint32_t serverQueueCapacity() const;

    Stats stats() const;

    /** Stops the threads; undelivered requests are dropped. */
    void close();

  private:
    struct Pending
    {
        SubmitMsg msg;
        int64_t deadlineMicros = 0; ///< 0 = no request budget
        int64_t dueMicros = 0;      ///< >0 = scheduled resubmit
        int resubmits = 0;
        bool everSent = false;
    };

    void readerLoop();
    void timerLoop();
    bool reconnectLoop(bool initial);
    void handleServerMsg(const ServerMsg &msg);
    void deliverTerminal(const ServerMsg &msg);
    void failPendingLocked(std::unique_lock<std::mutex> &lock,
                           uint64_t id, const std::string &message);
    void recordDoneLocked(uint64_t id);
    double backoffForLocked(int step);
    void emitEvent(uint64_t id, Event event);

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    CamsClientConfig config_;
    TerminalHandler terminalHandler_;
    EventHandler eventHandler_;
    std::shared_ptr<ServeClient> conn_;
    bool connected_ = false;
    bool closed_ = false;
    bool dead_ = false;
    bool started_ = false;
    uint64_t nonce_ = 0;
    uint64_t connSeq_ = 0;
    Rng rng_{1};
    Stats stats_;
    uint32_t workers_ = 0;
    uint32_t queueCapacity_ = 0;
    std::unordered_map<uint64_t, Pending> pending_;
    std::unordered_set<uint64_t> doneIds_;
    std::deque<uint64_t> doneOrder_;
    std::unordered_set<uint64_t> waiters_;
    std::unordered_map<uint64_t, ServerMsg> delivered_;
    std::thread reader_;
    std::thread timer_;
};

} // namespace cams

#endif // CAMS_PIPELINE_SERVE_RETRY_CLIENT_HH
