/**
 * @file
 * Renderers that turn one StatsReplyMsg snapshot into the three
 * textual shapes the telemetry plane serves:
 *
 *  - JSON: the machine-readable form cams_top --json emits and
 *    check_stats.py validates; one flat object per poll.
 *  - Prometheus text exposition (version 0.0.4): every counter as a
 *    `counter`, every histogram summary as per-quantile gauges plus
 *    _count/_sum-style series, ready for a standard scraper to
 *    ingest without an adapter.
 *  - A one-line operator heartbeat: the handful of numbers a human
 *    watches (uptime, throughput, p50/p99, queue, shed, cache-hit
 *    rate), emitted by camsd --stats-interval-ms.
 *
 * Rendering is pure (snapshot in, string out): the renderers run
 * client-side in cams_top and server-side in camsd's heartbeat from
 * the same wire struct, so the two views can never drift.
 *
 * Metric name mangling for Prometheus: dots become underscores and a
 * "cams_" prefix is added ("serve.compile_ms" ->
 * "cams_serve_compile_ms"); names are already [a-z0-9_.] by the
 * registry's naming convention.
 */

#ifndef CAMS_PIPELINE_SERVE_STATS_TEXT_HH
#define CAMS_PIPELINE_SERVE_STATS_TEXT_HH

#include <string>

#include "pipeline/serve/proto.hh"

namespace cams
{

/**
 * Full JSON rendering of a stats snapshot:
 * {"uptime_seconds":..,"window_seconds":..,"queue_depth":..,
 *  "in_flight":..,"workers":..,"queue_capacity":..,"draining":..,
 *  "counters":{name:{"total":..,"last1m":..,"last5m":..}},
 *  "histograms":{name:{"total":{summary},"last1m":{..},"last5m":{..}}},
 *  "tenants":{name:{"submitted":..,"completed":..,"shed":..,
 *                   "cache_hits":..}}}
 * where {summary} is the registry's count/min/mean/max/p50/p90/p99.
 */
std::string renderStatsJson(const StatsReplyMsg &msg);

/** Prometheus text exposition (0.0.4) of the same snapshot. */
std::string renderPrometheus(const StatsReplyMsg &msg);

/**
 * One-line human heartbeat, e.g.
 * "up 42s q 3/64 infl 2 done 1234 (+56/1m) shed 7 cache 78%
 *  compile p50 12.3ms p99 87.6ms".
 */
std::string renderStatsLine(const StatsReplyMsg &msg);

} // namespace cams

#endif // CAMS_PIPELINE_SERVE_STATS_TEXT_HH
