#include "pipeline/serve/client.hh"

namespace cams
{

bool
ServeClient::connect(const std::string &socketPath,
                     const std::string &tenant, std::string &error)
{
    SocketFd fd = connectUnix(socketPath, error);
    if (!fd.valid())
        return false;

    HelloMsg hello;
    hello.tenant = tenant;
    if (!stream_.writeFrame(fd.fd(), encodeHello(hello), error))
        return false;

    std::string payload;
    if (!stream_.readFrame(fd.fd(), payload, serveMaxFrameBytes,
                           readTimeoutMs_, error))
        return false;
    ServerMsg ack;
    if (!decodeServerMsg(payload, ack)) {
        error = "malformed handshake reply";
        return false;
    }
    if (ack.type == ServeMsgType::Error) {
        error = "server refused handshake: " + ack.message;
        return false;
    }
    if (ack.type != ServeMsgType::HelloAck ||
        ack.version != serveProtoVersion) {
        error = "unexpected handshake reply";
        return false;
    }
    workers_ = ack.workers;
    queueCapacity_ = ack.queueCapacity;
    fd_ = std::move(fd);
    return true;
}

bool
ServeClient::sendPayload(const std::string &payload, std::string &error)
{
    std::lock_guard<std::mutex> lock(sendMutex_);
    if (!fd_.valid()) {
        error = "not connected";
        return false;
    }
    return stream_.writeFrame(fd_.fd(), payload, error);
}

bool
ServeClient::submit(const SubmitMsg &msg, std::string &error)
{
    return sendPayload(encodeSubmit(msg), error);
}

bool
ServeClient::cancel(uint64_t id, std::string &error)
{
    return sendPayload(encodeCancel(id), error);
}

bool
ServeClient::ping(uint64_t token, std::string &error)
{
    return sendPayload(encodePing(token), error);
}

bool
ServeClient::requestStats(uint64_t token, std::string &error)
{
    return sendPayload(encodeStatsRequest(token), error);
}

bool
ServeClient::requestHealth(uint64_t token, std::string &error)
{
    return sendPayload(encodeHealthRequest(token), error);
}

bool
ServeClient::stats(StatsReplyMsg &out, std::string &error)
{
    if (!requestStats(1, error))
        return false;
    ServerMsg msg;
    while (readMsg(msg, error)) {
        if (msg.type == ServeMsgType::StatsReply) {
            out = std::move(msg.stats);
            return true;
        }
        if (msg.type == ServeMsgType::Error) {
            error = msg.message;
            return false;
        }
    }
    return false;
}

bool
ServeClient::health(HealthReplyMsg &out, std::string &error)
{
    if (!requestHealth(1, error))
        return false;
    ServerMsg msg;
    while (readMsg(msg, error)) {
        if (msg.type == ServeMsgType::HealthReply) {
            out = std::move(msg.health);
            return true;
        }
        if (msg.type == ServeMsgType::Error) {
            error = msg.message;
            return false;
        }
    }
    return false;
}

bool
ServeClient::readMsg(ServerMsg &out, std::string &error)
{
    std::lock_guard<std::mutex> lock(recvMutex_);
    if (!fd_.valid()) {
        error = "not connected";
        return false;
    }
    std::string payload;
    if (!stream_.readFrame(fd_.fd(), payload, serveMaxFrameBytes,
                           readTimeoutMs_, error))
        return false;
    if (!decodeServerMsg(payload, out)) {
        error = "malformed server message";
        return false;
    }
    return true;
}

void
ServeClient::close()
{
    // Shutdown only: the descriptor itself stays allocated until the
    // destructor so a reader still blocked in recv() can never see
    // its fd number recycled by another thread's open().
    fd_.shutdownBoth();
}

} // namespace cams
