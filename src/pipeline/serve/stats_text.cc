#include "pipeline/serve/stats_text.hh"

#include <algorithm>
#include <sstream>

#include "support/str.hh"

namespace cams
{

namespace
{

void
appendSummaryJson(std::ostringstream &os,
                  const HistogramSummary &summary)
{
    os << "{\"count\":" << summary.count << ",\"min\":" << summary.min
       << ",\"mean\":" << summary.mean << ",\"max\":" << summary.max
       << ",\"p50\":" << summary.p50 << ",\"p90\":" << summary.p90
       << ",\"p99\":" << summary.p99 << "}";
}

/** "serve.compile_ms" -> "cams_serve_compile_ms". */
std::string
promName(const std::string &name)
{
    std::string out = "cams_";
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

const StatsCounter *
findCounter(const StatsReplyMsg &msg, const std::string &name)
{
    for (const StatsCounter &counter : msg.counters)
        if (counter.name == name)
            return &counter;
    return nullptr;
}

const StatsHistogram *
findHistogram(const StatsReplyMsg &msg, const std::string &name)
{
    for (const StatsHistogram &histogram : msg.histograms)
        if (histogram.name == name)
            return &histogram;
    return nullptr;
}

} // namespace

std::string
renderStatsJson(const StatsReplyMsg &msg)
{
    std::ostringstream os;
    os << "{\"uptime_seconds\":" << msg.uptimeSeconds
       << ",\"window_seconds\":" << msg.windowSeconds
       << ",\"queue_depth\":" << msg.queueDepth
       << ",\"in_flight\":" << msg.inFlight
       << ",\"workers\":" << msg.workers
       << ",\"queue_capacity\":" << msg.queueCapacity
       << ",\"draining\":" << (msg.draining ? "true" : "false");
    os << ",\"counters\":{";
    bool first = true;
    for (const StatsCounter &counter : msg.counters) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << counter.name
           << "\":{\"total\":" << counter.total
           << ",\"last1m\":" << counter.last1m
           << ",\"last5m\":" << counter.last5m << "}";
    }
    os << "},\"histograms\":{";
    first = true;
    for (const StatsHistogram &histogram : msg.histograms) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << histogram.name << "\":{\"total\":";
        appendSummaryJson(os, histogram.total);
        os << ",\"last1m\":";
        appendSummaryJson(os, histogram.last1m);
        os << ",\"last5m\":";
        appendSummaryJson(os, histogram.last5m);
        os << "}";
    }
    os << "},\"tenants\":{";
    first = true;
    for (const TenantStats &tenant : msg.tenants) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << tenant.tenant
           << "\":{\"submitted\":" << tenant.submitted
           << ",\"completed\":" << tenant.completed
           << ",\"shed\":" << tenant.shed
           << ",\"cache_hits\":" << tenant.cacheHits << "}";
    }
    os << "}}";
    return os.str();
}

std::string
renderPrometheus(const StatsReplyMsg &msg)
{
    std::ostringstream os;
    os << "# HELP cams_uptime_seconds Daemon uptime.\n"
       << "# TYPE cams_uptime_seconds gauge\n"
       << "cams_uptime_seconds " << msg.uptimeSeconds << "\n";
    os << "# TYPE cams_queue_depth gauge\n"
       << "cams_queue_depth " << msg.queueDepth << "\n";
    os << "# TYPE cams_in_flight gauge\n"
       << "cams_in_flight " << msg.inFlight << "\n";
    os << "# TYPE cams_draining gauge\n"
       << "cams_draining " << (msg.draining ? 1 : 0) << "\n";
    for (const StatsCounter &counter : msg.counters) {
        const std::string name = promName(counter.name) + "_total";
        os << "# TYPE " << name << " counter\n"
           << name << " " << counter.total << "\n";
    }
    for (const StatsHistogram &histogram : msg.histograms) {
        const std::string base = promName(histogram.name);
        os << "# TYPE " << base << " summary\n";
        os << base << "{quantile=\"0.5\"} " << histogram.total.p50
           << "\n";
        os << base << "{quantile=\"0.9\"} " << histogram.total.p90
           << "\n";
        os << base << "{quantile=\"0.99\"} " << histogram.total.p99
           << "\n";
        os << base << "_count " << histogram.total.count << "\n";
        os << base << "_sum "
           << histogram.total.mean *
                  static_cast<double>(histogram.total.count)
           << "\n";
        // Windowed percentiles as gauges: scrapers usually derive
        // rates themselves, but the 1m window is what cams_top and
        // alert rules watch, so it is exported ready-made.
        os << "# TYPE " << base << "_1m gauge\n";
        os << base << "_1m{quantile=\"0.5\"} " << histogram.last1m.p50
           << "\n";
        os << base << "_1m{quantile=\"0.99\"} "
           << histogram.last1m.p99 << "\n";
    }
    for (const TenantStats &tenant : msg.tenants) {
        const std::string label =
            "{tenant=\"" + tenant.tenant + "\"} ";
        os << "cams_tenant_submitted_total" << label
           << tenant.submitted << "\n";
        os << "cams_tenant_completed_total" << label
           << tenant.completed << "\n";
        os << "cams_tenant_shed_total" << label << tenant.shed
           << "\n";
        os << "cams_tenant_cache_hits_total" << label
           << tenant.cacheHits << "\n";
    }
    return os.str();
}

std::string
renderStatsLine(const StatsReplyMsg &msg)
{
    const StatsCounter *completed =
        findCounter(msg, "serve.completed");
    const StatsCounter *shedFull = findCounter(msg, "serve.shed_full");
    const StatsCounter *shedDraining =
        findCounter(msg, "serve.shed_draining");
    const StatsCounter *compiled = findCounter(msg, "serve.compiled");
    const StatsCounter *cacheHits =
        findCounter(msg, "serve.cache_hits");
    const StatsHistogram *compileMs =
        findHistogram(msg, "serve.compile_ms");

    const int64_t done = completed ? completed->total : 0;
    const int64_t done1m = completed ? completed->last1m : 0;
    const int64_t shed = (shedFull ? shedFull->total : 0) +
                         (shedDraining ? shedDraining->total : 0);
    const int64_t compiles = compiled ? compiled->total : 0;
    const int64_t hits = cacheHits ? cacheHits->total : 0;
    const long hitPct =
        compiles > 0
            ? static_cast<long>(100.0 * static_cast<double>(hits) /
                                static_cast<double>(compiles))
            : 0;

    std::ostringstream os;
    os << "up " << static_cast<long>(msg.uptimeSeconds) << "s q "
       << msg.queueDepth << "/" << msg.queueCapacity << " infl "
       << msg.inFlight << " done " << done << " (+" << done1m
       << "/1m) shed " << shed << " cache " << hitPct << "%";
    if (compileMs && compileMs->total.count > 0) {
        os << " compile p50 "
           << formatFixed(compileMs->last1m.count > 0
                              ? compileMs->last1m.p50
                              : compileMs->total.p50,
                          1)
           << "ms p99 "
           << formatFixed(compileMs->last1m.count > 0
                              ? compileMs->last1m.p99
                              : compileMs->total.p99,
                          1)
           << "ms";
    }
    if (msg.draining)
        os << " DRAINING";
    return os.str();
}

} // namespace cams
