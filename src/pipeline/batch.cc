#include "pipeline/batch.hh"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "support/threadpool.hh"

namespace cams
{

namespace
{

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

} // namespace

std::string
BatchStats::toJson() const
{
    std::ostringstream os;
    os << "{"
       << "\"jobs\":" << jobs << ","
       << "\"succeeded\":" << succeeded << ","
       << "\"failed\":" << failed << ","
       << "\"threads\":" << threads << ","
       << "\"wall_ms\":" << wallMillis << ","
       << "\"cpu_ms\":" << cpuMillis << ","
       << "\"ii_attempts\":" << iiAttempts << ","
       << "\"assign_retries\":" << assignRetries << ","
       << "\"evictions\":" << evictions << ","
       << "\"copies\":" << copies << "}";
    return os.str();
}

BatchOutcome
BatchRunner::run(const std::vector<CompileJob> &jobs, int threads)
{
    BatchOutcome outcome;
    outcome.results.resize(jobs.size());
    outcome.jobMillis.resize(jobs.size(), 0.0);

    const Clock::time_point batchStart = Clock::now();
    {
        ThreadPool pool(threads);
        for (size_t i = 0; i < jobs.size(); ++i) {
            pool.post([&jobs, &outcome, i] {
                const CompileJob &job = jobs[i];
                if (!job.loop || !job.machine) {
                    throw std::invalid_argument(
                        "CompileJob with null loop or machine");
                }
                const Clock::time_point jobStart = Clock::now();
                outcome.results[i] =
                    job.clustered
                        ? compileClustered(*job.loop, *job.machine,
                                           job.options)
                        : compileUnified(*job.loop, *job.machine,
                                         job.options);
                outcome.jobMillis[i] = millisSince(jobStart);
            });
        }
        pool.wait(); // rethrows the first job exception, if any
        outcome.stats.threads = pool.threadCount();
    }
    outcome.stats.wallMillis = millisSince(batchStart);

    outcome.stats.jobs = static_cast<int>(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const CompileResult &result = outcome.results[i];
        if (result.success)
            ++outcome.stats.succeeded;
        else
            ++outcome.stats.failed;
        outcome.stats.cpuMillis += outcome.jobMillis[i];
        outcome.stats.iiAttempts += result.attempts;
        outcome.stats.assignRetries += result.assignRetries;
        outcome.stats.evictions += result.evictions;
        outcome.stats.copies += result.copies;
    }
    return outcome;
}

std::vector<CompileJob>
clusteredJobs(const std::vector<Dfg> &suite, const MachineDesc &machine,
              const CompileOptions &options)
{
    std::vector<CompileJob> jobs;
    jobs.reserve(suite.size());
    for (const Dfg &loop : suite)
        jobs.push_back({&loop, &machine, options, true});
    return jobs;
}

std::vector<CompileJob>
unifiedJobs(const std::vector<Dfg> &suite, const MachineDesc &unified,
            const CompileOptions &options)
{
    std::vector<CompileJob> jobs;
    jobs.reserve(suite.size());
    for (const Dfg &loop : suite)
        jobs.push_back({&loop, &unified, options, false});
    return jobs;
}

} // namespace cams
