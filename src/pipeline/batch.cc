#include "pipeline/batch.hh"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "support/threadpool.hh"

namespace cams
{

namespace
{

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

} // namespace

std::string
BatchStats::toJson() const
{
    std::ostringstream os;
    os << "{"
       << "\"jobs\":" << jobs << ","
       << "\"succeeded\":" << succeeded << ","
       << "\"failed\":" << failed << ","
       << "\"degraded\":" << degraded << ","
       << "\"captured_exceptions\":" << capturedExceptions << ","
       << "\"threads\":" << threads << ","
       << "\"wall_ms\":" << wallMillis << ","
       << "\"cpu_ms\":" << cpuMillis << ","
       << "\"ii_attempts\":" << iiAttempts << ","
       << "\"assign_retries\":" << assignRetries << ","
       << "\"evictions\":" << evictions << ","
       << "\"copies\":" << copies << ","
       << "\"invariant_recoveries\":" << invariantRecoveries << ","
       << "\"verifier_rejects\":" << verifierRejects << ","
       << "\"fault_trips\":" << faultTrips << ","
       << "\"failure_kinds\":{";
    bool first = true;
    for (int kind = 1; kind < numFailureKinds; ++kind) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << failureKindName(FailureKind(kind))
           << "\":" << failuresByKind[kind];
    }
    os << "}}";
    return os.str();
}

BatchOutcome
BatchRunner::run(const std::vector<CompileJob> &jobs, int threads,
                 double jobDeadlineMs)
{
    BatchOutcome outcome;
    outcome.results.resize(jobs.size());
    outcome.jobMillis.resize(jobs.size(), 0.0);
    std::vector<char> captured(jobs.size(), 0);

    const Clock::time_point batchStart = Clock::now();
    {
        ThreadPool pool(threads);
        for (size_t i = 0; i < jobs.size(); ++i) {
            pool.post([&jobs, &outcome, &captured, jobDeadlineMs, i] {
                const CompileJob &job = jobs[i];
                if (!job.loop || !job.machine) {
                    throw std::invalid_argument(
                        "CompileJob with null loop or machine");
                }
                CompileOptions options = job.options;
                if (options.timeBudgetMs <= 0.0)
                    options.timeBudgetMs = jobDeadlineMs;
                const Clock::time_point jobStart = Clock::now();
                try {
                    outcome.results[i] =
                        job.clustered
                            ? compileClustered(*job.loop, *job.machine,
                                               options)
                            : compileUnified(*job.loop, *job.machine,
                                             options);
                } catch (const std::exception &err) {
                    // One pathological job must not kill the suite:
                    // capture the escape as that job's classified
                    // failure and keep going.
                    CompileResult crashed;
                    crashed.failure = FailureKind::InternalInvariant;
                    crashed.failureDetail =
                        std::string("uncaught exception: ") +
                        err.what();
                    outcome.results[i] = std::move(crashed);
                    captured[i] = 1;
                } catch (...) {
                    CompileResult crashed;
                    crashed.failure = FailureKind::InternalInvariant;
                    crashed.failureDetail =
                        "uncaught non-standard exception";
                    outcome.results[i] = std::move(crashed);
                    captured[i] = 1;
                }
                outcome.jobMillis[i] = millisSince(jobStart);
            });
        }
        pool.wait(); // rethrows a harness bug (null job), if any
        outcome.stats.threads = pool.threadCount();
    }
    outcome.stats.wallMillis = millisSince(batchStart);

    outcome.stats.jobs = static_cast<int>(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const CompileResult &result = outcome.results[i];
        if (result.success) {
            ++outcome.stats.succeeded;
            if (result.degraded != DegradeLevel::None)
                ++outcome.stats.degraded;
        } else {
            ++outcome.stats.failed;
            ++outcome.stats.failuresByKind[int(result.failure)];
        }
        if (captured[i])
            ++outcome.stats.capturedExceptions;
        outcome.stats.cpuMillis += outcome.jobMillis[i];
        outcome.stats.iiAttempts += result.attempts;
        outcome.stats.assignRetries += result.assignRetries;
        outcome.stats.evictions += result.evictions;
        outcome.stats.copies += result.copies;
        outcome.stats.invariantRecoveries += result.invariantRecoveries;
        outcome.stats.verifierRejects += result.verifierRejects;
        outcome.stats.faultTrips += result.faultTrips;
    }
    return outcome;
}

std::vector<CompileJob>
clusteredJobs(const std::vector<Dfg> &suite, const MachineDesc &machine,
              const CompileOptions &options)
{
    std::vector<CompileJob> jobs;
    jobs.reserve(suite.size());
    for (const Dfg &loop : suite)
        jobs.push_back({&loop, &machine, options, true});
    return jobs;
}

std::vector<CompileJob>
unifiedJobs(const std::vector<Dfg> &suite, const MachineDesc &unified,
            const CompileOptions &options)
{
    std::vector<CompileJob> jobs;
    jobs.reserve(suite.size());
    for (const Dfg &loop : suite)
        jobs.push_back({&loop, &unified, options, false});
    return jobs;
}

} // namespace cams
