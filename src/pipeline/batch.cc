#include "pipeline/batch.hh"

#include <sstream>
#include <stdexcept>

#include "support/threadpool.hh"
#include "support/time.hh"

namespace cams
{

std::string
BatchStats::toJson() const
{
    std::ostringstream os;
    os << "{"
       << "\"jobs\":" << jobs << ","
       << "\"succeeded\":" << succeeded << ","
       << "\"failed\":" << failed << ","
       << "\"degraded\":" << degraded << ","
       << "\"captured_exceptions\":" << capturedExceptions << ","
       << "\"threads\":" << threads << ","
       << "\"wall_ms\":" << wallMillis << ","
       << "\"cpu_ms\":" << cpuMillis << ","
       << "\"ii_attempts\":" << iiAttempts << ","
       << "\"assign_retries\":" << assignRetries << ","
       << "\"evictions\":" << evictions << ","
       << "\"copies\":" << copies << ","
       << "\"invariant_recoveries\":" << invariantRecoveries << ","
       << "\"verifier_rejects\":" << verifierRejects << ","
       << "\"fault_trips\":" << faultTrips << ","
       << "\"ctx_hits\":" << ctxHits << ","
       << "\"ctx_misses\":" << ctxMisses << ","
       << "\"mrt_word_scans\":" << mrtWordScans << ","
       << "\"cache_hits\":" << cacheHits << ","
       << "\"cache_misses\":" << cacheMisses << ","
       << "\"hint_used\":" << hintUsed << ","
       << "\"hint_stale\":" << hintStale << ","
       << "\"exact_sat\":" << exactSat << ","
       << "\"exact_unsat\":" << exactUnsat << ","
       << "\"exact_timeout\":" << exactTimeout << ","
       << "\"exact_unsupported\":" << exactUnsupported << ","
       << "\"exact_tightened\":" << exactTightened << ","
       << "\"exact_certified\":" << exactCertified << ","
       << "\"failure_kinds\":{";
    bool first = true;
    for (int kind = 1; kind < numFailureKinds; ++kind) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << failureKindName(FailureKind(kind))
           << "\":" << failuresByKind[kind];
    }
    os << "}";
    if (!metricsJson.empty())
        os << ",\"metrics\":" << metricsJson;
    os << "}";
    return os.str();
}

BatchOutcome
BatchRunner::run(const std::vector<CompileJob> &jobs, int threads,
                 double jobDeadlineMs, MetricsRegistry *metrics)
{
    BatchOutcome outcome;
    outcome.results.resize(jobs.size());
    outcome.jobMillis.resize(jobs.size(), 0.0);
    std::vector<char> captured(jobs.size(), 0);

    const Stopwatch batch_watch;
    {
        ThreadPool pool(threads);
        for (size_t i = 0; i < jobs.size(); ++i) {
            pool.post([&jobs, &outcome, &captured, jobDeadlineMs, i] {
                const CompileJob &job = jobs[i];
                if (!job.loop || !job.machine) {
                    throw std::invalid_argument(
                        "CompileJob with null loop or machine");
                }
                CompileOptions options = job.options;
                if (options.timeBudgetMs <= 0.0)
                    options.timeBudgetMs = jobDeadlineMs;
                if (options.trace.sink && options.trace.tag.empty())
                    options.trace.tag = "job" + std::to_string(i);
                // One scope per job in the worker's lane, so a trace
                // shows the batch fan-out at a glance.
                TraceScope job_scope(options.trace, TraceLevel::Phase,
                                     "batch_job", "batch");
                const Stopwatch job_watch;
                try {
                    outcome.results[i] =
                        job.clustered
                            ? compileClustered(*job.loop, *job.machine,
                                               options)
                            : compileUnified(*job.loop, *job.machine,
                                             options);
                } catch (const std::exception &err) {
                    // One pathological job must not kill the suite:
                    // capture the escape as that job's classified
                    // failure and keep going.
                    CompileResult crashed;
                    crashed.failure = FailureKind::InternalInvariant;
                    crashed.failureDetail =
                        std::string("uncaught exception: ") +
                        err.what();
                    outcome.results[i] = std::move(crashed);
                    captured[i] = 1;
                } catch (...) {
                    CompileResult crashed;
                    crashed.failure = FailureKind::InternalInvariant;
                    crashed.failureDetail =
                        "uncaught non-standard exception";
                    outcome.results[i] = std::move(crashed);
                    captured[i] = 1;
                }
                outcome.jobMillis[i] = job_watch.elapsedMs();
            });
        }
        pool.wait(); // rethrows a harness bug (null job), if any
        outcome.stats.threads = pool.threadCount();
    }
    outcome.stats.wallMillis = batch_watch.elapsedMs();

    // The snapshot registry is fresh per run; the caller's registry
    // (if any) receives the same records on top, so suite-wide
    // aggregation never contaminates per-run numbers.
    MetricsRegistry internal;
    auto record = [&](const char *name, double value) {
        internal.record(name, value);
        if (metrics)
            metrics->record(name, value);
    };
    auto count = [&](const char *name, int64_t delta) {
        internal.add(name, delta);
        if (metrics)
            metrics->add(name, delta);
    };

    outcome.stats.jobs = static_cast<int>(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const CompileResult &result = outcome.results[i];
        if (result.success) {
            ++outcome.stats.succeeded;
            if (result.degraded != DegradeLevel::None)
                ++outcome.stats.degraded;
            else
                record("ii_slack", result.ii - result.mii.mii);
        } else {
            ++outcome.stats.failed;
            ++outcome.stats.failuresByKind[int(result.failure)];
            record("final_ii_tried", result.finalIiTried);
        }
        if (captured[i])
            ++outcome.stats.capturedExceptions;
        record("job_ms", outcome.jobMillis[i]);
        record("assign_ms", result.phaseMs.assignMs);
        outcome.stats.cpuMillis += outcome.jobMillis[i];
        outcome.stats.iiAttempts += result.attempts;
        outcome.stats.assignRetries += result.assignRetries;
        outcome.stats.evictions += result.evictions;
        outcome.stats.copies += result.copies;
        outcome.stats.invariantRecoveries += result.invariantRecoveries;
        outcome.stats.verifierRejects += result.verifierRejects;
        outcome.stats.faultTrips += result.faultTrips;
        outcome.stats.ctxHits += result.ctxHits;
        outcome.stats.ctxMisses += result.ctxMisses;
        outcome.stats.mrtWordScans += result.mrtWordScans;
        if (result.cacheProbed) {
            if (result.fromCache)
                ++outcome.stats.cacheHits;
            else
                ++outcome.stats.cacheMisses;
        }
        if (result.hintUsed)
            ++outcome.stats.hintUsed;
        if (result.hintStale)
            ++outcome.stats.hintStale;
        switch (result.exact.outcome) {
          case ExactOutcome::NotRun:
            break;
          case ExactOutcome::Sat:
            ++outcome.stats.exactSat;
            break;
          case ExactOutcome::Unsat:
            ++outcome.stats.exactUnsat;
            break;
          case ExactOutcome::Timeout:
            ++outcome.stats.exactTimeout;
            break;
          case ExactOutcome::Unsupported:
            ++outcome.stats.exactUnsupported;
            break;
        }
        if (result.exact.tightened)
            ++outcome.stats.exactTightened;
        if (result.exact.certified)
            ++outcome.stats.exactCertified;
    }
    count("jobs_succeeded", outcome.stats.succeeded);
    count("jobs_failed", outcome.stats.failed);
    count("jobs_degraded", outcome.stats.degraded);
    count("ctx.hits", outcome.stats.ctxHits);
    count("ctx.misses", outcome.stats.ctxMisses);
    count("mrt.word_scans", outcome.stats.mrtWordScans);
    count("cache.hits", outcome.stats.cacheHits);
    count("cache.misses", outcome.stats.cacheMisses);
    count("hint.used", outcome.stats.hintUsed);
    count("hint.stale", outcome.stats.hintStale);
    count("exact.sat", outcome.stats.exactSat);
    count("exact.unsat", outcome.stats.exactUnsat);
    count("exact.timeout", outcome.stats.exactTimeout);
    count("exact.unsupported", outcome.stats.exactUnsupported);
    count("exact.tightened", outcome.stats.exactTightened);
    count("exact.certified", outcome.stats.exactCertified);
    outcome.stats.metricsJson = internal.toJson();
    return outcome;
}

std::vector<CompileJob>
clusteredJobs(const std::vector<Dfg> &suite, const MachineDesc &machine,
              const CompileOptions &options)
{
    std::vector<CompileJob> jobs;
    jobs.reserve(suite.size());
    for (const Dfg &loop : suite) {
        jobs.push_back({&loop, &machine, options, true});
        if (options.trace.sink && !loop.name().empty())
            jobs.back().options.trace.tag = "c:" + loop.name();
    }
    return jobs;
}

std::vector<CompileJob>
unifiedJobs(const std::vector<Dfg> &suite, const MachineDesc &unified,
            const CompileOptions &options)
{
    std::vector<CompileJob> jobs;
    jobs.reserve(suite.size());
    for (const Dfg &loop : suite) {
        jobs.push_back({&loop, &unified, options, false});
        if (options.trace.sink && !loop.name().empty())
            jobs.back().options.trace.tag = "u:" + loop.name();
    }
    return jobs;
}

} // namespace cams
