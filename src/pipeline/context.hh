/**
 * @file
 * Per-loop analysis context shared across an II escalation.
 *
 * The driver probes candidate IIs from MII upward, and both phases
 * historically recomputed every analysis at every probe: the assigner
 * re-derived SCCs, priority sets, timing and the swing order per
 * rotation per II, and the schedulers re-ran the full RecMII binary
 * search per call. Almost all of that is II-invariant. A LoopContext
 * owns one loop graph's facts and computes each exactly once:
 *
 *   II-invariant: SCC decomposition, priority node sets, per-SCC and
 *   whole-graph RecMII, per-node resource requests, the structural
 *   assignability check.
 *
 *   II-dependent, solved incrementally: TimeAnalysis (via
 *   TimingSolver's cached acyclic seeds and pre-sorted edges), the
 *   swing order at the current II, and feasibility at an II (a single
 *   positive-cycle test per recurrence instead of the binary search,
 *   with monotone bounds remembered across probes).
 *
 * Everything returned is byte-identical to the from-scratch
 * computation -- all cached facts are unique fixpoints or
 * deterministic function results -- so a pipeline run with contexts
 * produces exactly the same schedules as one without (the A/B
 * determinism test in tests/context_test.cc holds this invariant).
 *
 * A context is single-threaded, like the compile it serves; batch
 * parallelism stays at the loop level.
 */

#ifndef CAMS_PIPELINE_CONTEXT_HH
#define CAMS_PIPELINE_CONTEXT_HH

#include <optional>
#include <string>
#include <vector>

#include "assign/assignment.hh"
#include "graph/adjacency.hh"
#include "graph/analysis.hh"
#include "graph/dfg.hh"
#include "graph/scc.hh"
#include "mrt/mrt.hh"
#include "order/scc_sets.hh"

namespace cams
{

/** Lazily-computed, cached analyses of one loop graph. */
class LoopContext
{
  public:
    /** Binds the context to a graph (not owned; must outlive it). */
    explicit LoopContext(const Dfg &graph);

    const Dfg &graph() const { return *graph_; }

    /** SCC decomposition (computed once). */
    const SccInfo &sccs();

    /** The Section 4.1 priority sets (computed once). */
    const NodeSets &prioritySets();

    /**
     * Packed neighbor lists (computed once). The assigner evaluates
     * predecessors/successors for every (node, cluster) candidate;
     * reading them as spans instead of rebuilding sorted vectors is
     * the single largest win of the incremental pipeline.
     */
    const Adjacency &adjacency();

    /**
     * Whole-graph RecMII. Derived from the priority sets' per-SCC
     * values, so the binary searches run once for both consumers.
     */
    int recMii();

    /**
     * True when the graph has no positive cycle at this II, i.e.
     * ii >= RecMII. Uses one Bellman-Ford pass per recurrence instead
     * of the full RecMII search, and remembers the monotone bounds:
     * once an II is known feasible every larger II answers from
     * cache, and vice versa.
     */
    bool schedulableAt(int ii);

    /** Timing analysis at the II (incremental; see TimingSolver). */
    const TimeAnalysis &timing(int ii);

    /** Swing order at the II (cached for the current II). */
    const std::vector<NodeId> &swingOrder(int ii);

    /**
     * Per-node resource requests of an annotated loop (II-invariant).
     * Keyed by the (loop, model) identities; a different pair
     * recomputes, so one context serves one loop/machine at a time.
     */
    const std::vector<std::vector<PoolId>> &requests(
        const AnnotatedLoop &loop, const ResourceModel &model);

    /**
     * The assigner's input preconditions (well-formed, no copies,
     * machine can execute every opcode), checked once per machine;
     * cams_fatal with the assigner's exact diagnostics on violation.
     */
    void checkAssignable(const MachineDesc &machine);

    /**
     * A cleared MRT of the given length, reusing one table across II
     * probes and restarts instead of reconstructing it.
     */
    Mrt &scratchMrt(const ResourceModel &model, int ii);

    /** Queries answered from cache / computed fresh. */
    long hits() const { return hits_; }
    long misses() const { return misses_; }

  private:
    const Dfg *graph_;

    std::optional<SccInfo> sccs_;
    std::optional<NodeSets> sets_;
    std::optional<Adjacency> adjacency_;
    std::optional<int> recMii_;
    std::optional<TimingSolver> timingSolver_;

    /** Feasibility bounds: monotone in II. */
    int knownSchedulable_ = -1;   ///< smallest II proven feasible
    int knownInfeasible_ = -1;    ///< largest II proven infeasible

    int orderIi_ = -1;
    std::vector<NodeId> order_;

    const AnnotatedLoop *requestsLoop_ = nullptr;
    const ResourceModel *requestsModel_ = nullptr;
    std::vector<std::vector<PoolId>> requests_;

    std::string assignableMachine_;
    Mrt scratch_;

    long hits_ = 0;
    long misses_ = 0;
};

} // namespace cams

#endif // CAMS_PIPELINE_CONTEXT_HH
