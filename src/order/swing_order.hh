/**
 * @file
 * Swing Modulo Scheduler node ordering (Llosa et al., PACT 1996),
 * applied per priority set as the paper's Section 4.1 prescribes.
 *
 * Within each set the order alternates between top-down and bottom-up
 * sweeps so that, whenever possible, a node is listed only after all
 * of its already-listed neighbors from one side. For cluster
 * assignment this minimizes the chance of assigning a node whose
 * predecessors and successors already sit on different clusters; for
 * the SMS scheduler itself it minimizes value lifetimes.
 */

#ifndef CAMS_ORDER_SWING_ORDER_HH
#define CAMS_ORDER_SWING_ORDER_HH

#include <vector>

#include "graph/adjacency.hh"
#include "graph/analysis.hh"
#include "graph/dfg.hh"
#include "order/scc_sets.hh"

namespace cams
{

/**
 * Orders all nodes of the graph: sets are consumed in priority order
 * and the swing sweep is applied within each set.
 *
 * @param timing a timing analysis at the candidate II (depth = asap,
 *        height drives criticality tie-breaks).
 * @param adjacency optional packed neighbor lists of the same graph;
 *        when given, the sweep reads them instead of rebuilding
 *        neighbor vectors per candidate (identical results).
 * @return every node exactly once, highest assignment priority first.
 */
std::vector<NodeId> swingOrder(const Dfg &graph, const NodeSets &sets,
                               const TimeAnalysis &timing,
                               const Adjacency *adjacency = nullptr);

/** Convenience overload: builds SCC sets and timing at the given II. */
std::vector<NodeId> swingOrder(const Dfg &graph, int ii);

} // namespace cams

#endif // CAMS_ORDER_SWING_ORDER_HH
