/**
 * @file
 * Node grouping for cluster assignment (the paper's Section 4.1).
 *
 * Nodes are partitioned into an ordered list of sets: one set per
 * non-trivial SCC, sorted by decreasing RecMII so the most critical
 * recurrence is assigned first, followed by one final set holding
 * every node outside any recurrence.
 */

#ifndef CAMS_ORDER_SCC_SETS_HH
#define CAMS_ORDER_SCC_SETS_HH

#include <vector>

#include "graph/dfg.hh"
#include "graph/scc.hh"

namespace cams
{

/** The priority-ordered node sets of §4.1. */
struct NodeSets
{
    /** Sets in decreasing priority; the last set holds non-SCC nodes. */
    std::vector<std::vector<NodeId>> sets;

    /** RecMII of each set (1 for the trailing non-recurrence set). */
    std::vector<int> recMii;

    /** Set index of every node. */
    std::vector<int> setOf;

    int numSets() const { return static_cast<int>(sets.size()); }
};

/**
 * Builds the priority sets.
 *
 * Ties between SCCs with equal RecMII are broken toward the larger
 * SCC (harder to place), then by smallest member id for determinism.
 */
NodeSets buildPrioritySets(const Dfg &graph, const SccInfo &sccs);

} // namespace cams

#endif // CAMS_ORDER_SCC_SETS_HH
