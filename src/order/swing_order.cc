#include "order/swing_order.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cams
{

namespace
{

/**
 * True when every distance-0 predecessor of v inside the same set is
 * already ordered (top-down frontier condition). Loop-carried edges
 * are exempt: they close recurrences, and their scheduling windows
 * scale with II.
 */
bool
topDownReady(const Dfg &graph, NodeId v, const std::vector<bool> &pending)
{
    for (EdgeId e : graph.inEdges(v)) {
        const DfgEdge &edge = graph.edge(e);
        if (edge.distance == 0 && edge.src != v && pending[edge.src])
            return false;
    }
    return true;
}

/** Bottom-up frontier condition: no pending distance-0 successor. */
bool
bottomUpReady(const Dfg &graph, NodeId v, const std::vector<bool> &pending)
{
    for (EdgeId e : graph.outEdges(v)) {
        const DfgEdge &edge = graph.edge(e);
        if (edge.distance == 0 && edge.dst != v && pending[edge.dst])
            return false;
    }
    return true;
}

} // namespace

std::vector<NodeId>
swingOrder(const Dfg &graph, const NodeSets &sets,
           const TimeAnalysis &timing)
{
    const int n = graph.numNodes();
    std::vector<bool> ordered(n, false);
    std::vector<NodeId> result;
    result.reserve(n);

    // depth = asap (distance from sources); height = distance to sinks.
    const auto &depth = timing.asap;
    const auto &height = timing.height;

    auto hasOrderedNeighbor = [&](NodeId v, bool preds) {
        const auto neighbors =
            preds ? graph.predecessors(v) : graph.successors(v);
        for (NodeId other : neighbors) {
            if (other != v && ordered[other])
                return true;
        }
        return false;
    };

    for (const auto &set : sets.sets) {
        std::vector<bool> pending(n, false);
        std::vector<NodeId> members;
        for (NodeId v : set) {
            if (!ordered[v]) {
                pending[v] = true;
                members.push_back(v);
            }
        }

        size_t left = members.size();
        while (left > 0) {
            // Candidates per direction. The frontier conditions keep
            // the key invariant: a node is ordered only when all of
            // its same-set distance-0 predecessors (top-down) or
            // successors (bottom-up) are already ordered, so the
            // scheduler never faces a fixed closed window.
            NodeId best_td = invalidNode;
            NodeId best_bu = invalidNode;
            NodeId frontier_td = invalidNode;
            NodeId frontier_bu = invalidNode;

            auto betterTopDown = [&](NodeId a, NodeId b) {
                // Deeper first; tie: more critical; tie: smaller id.
                if (depth[a] != depth[b])
                    return depth[a] > depth[b];
                if (height[a] != height[b])
                    return height[a] > height[b];
                return a < b;
            };
            auto betterBottomUp = [&](NodeId a, NodeId b) {
                if (height[a] != height[b])
                    return height[a] > height[b];
                if (depth[a] != depth[b])
                    return depth[a] > depth[b];
                return a < b;
            };

            for (NodeId v : members) {
                if (!pending[v])
                    continue;
                if (topDownReady(graph, v, pending)) {
                    if (frontier_td == invalidNode ||
                        betterTopDown(v, frontier_td)) {
                        frontier_td = v;
                    }
                    if (hasOrderedNeighbor(v, true) &&
                        (best_td == invalidNode ||
                         betterTopDown(v, best_td))) {
                        best_td = v;
                    }
                }
                if (bottomUpReady(graph, v, pending)) {
                    if (frontier_bu == invalidNode ||
                        betterBottomUp(v, frontier_bu)) {
                        frontier_bu = v;
                    }
                    if (hasOrderedNeighbor(v, false) &&
                        (best_bu == invalidNode ||
                         betterBottomUp(v, best_bu))) {
                        best_bu = v;
                    }
                }
            }

            // Preference order follows the SMS ordering: first the
            // unordered predecessors of the ordered region (bottom-up
            // extension), then its unordered successors (top-down),
            // then a fresh top-down start from the most critical
            // source -- producers before consumers, which is what
            // makes the paper's predicted-copy reservation (PCR)
            // effective -- and finally a bottom-up start. The last
            // arm only triggers if a same-set distance-0 cycle
            // defeated both frontiers, which a well-formed loop
            // cannot have.
            NodeId pick = invalidNode;
            if (best_bu != invalidNode) {
                pick = best_bu;
            } else if (best_td != invalidNode) {
                pick = best_td;
            } else if (frontier_td != invalidNode) {
                pick = frontier_td;
            } else if (frontier_bu != invalidNode) {
                pick = frontier_bu;
            } else {
                for (NodeId v : members) {
                    if (pending[v] &&
                        (pick == invalidNode || betterBottomUp(v, pick))) {
                        pick = v;
                    }
                }
            }

            cams_assert(pick != invalidNode, "no orderable node");
            pending[pick] = false;
            ordered[pick] = true;
            result.push_back(pick);
            --left;
        }
    }

    cams_assert(static_cast<int>(result.size()) == n,
                "swing order missed nodes");
    return result;
}

std::vector<NodeId>
swingOrder(const Dfg &graph, int ii)
{
    const SccInfo sccs = findSccs(graph);
    const NodeSets sets = buildPrioritySets(graph, sccs);
    const TimeAnalysis timing = analyzeTiming(graph, ii);
    return swingOrder(graph, sets, timing);
}

} // namespace cams
