#include "order/swing_order.hh"

#include <algorithm>

#include "support/logging.hh"

namespace cams
{

namespace
{

/**
 * True when every distance-0 predecessor of v inside the same set is
 * already ordered (top-down frontier condition). Loop-carried edges
 * are exempt: they close recurrences, and their scheduling windows
 * scale with II.
 */
bool
topDownReady(const Dfg &graph, NodeId v, const std::vector<bool> &pending)
{
    for (EdgeId e : graph.inEdges(v)) {
        const DfgEdge &edge = graph.edge(e);
        if (edge.distance == 0 && edge.src != v && pending[edge.src])
            return false;
    }
    return true;
}

/** Bottom-up frontier condition: no pending distance-0 successor. */
bool
bottomUpReady(const Dfg &graph, NodeId v, const std::vector<bool> &pending)
{
    for (EdgeId e : graph.outEdges(v)) {
        const DfgEdge &edge = graph.edge(e);
        if (edge.distance == 0 && edge.dst != v && pending[edge.dst])
            return false;
    }
    return true;
}

} // namespace

std::vector<NodeId>
swingOrder(const Dfg &graph, const NodeSets &sets,
           const TimeAnalysis &timing, const Adjacency *adjacency)
{
    const int n = graph.numNodes();
    std::vector<bool> ordered(n, false);
    std::vector<NodeId> result;
    result.reserve(n);

    // depth = asap (distance from sources); height = distance to sinks.
    const auto &depth = timing.asap;
    const auto &height = timing.height;

    auto hasOrderedNeighbor = [&](NodeId v, bool preds) {
        const auto neighbors =
            preds ? graph.predecessors(v) : graph.successors(v);
        for (NodeId other : neighbors) {
            if (other != v && ordered[other])
                return true;
        }
        return false;
    };

    // With an adjacency the frontier and ordered-neighbor predicates
    // are tracked incrementally: counters of pending distance-0
    // neighbors and sticky has-ordered-neighbor flags, updated in
    // O(deg) when a node is ordered, instead of rescanning edges per
    // candidate per round. The predicates take identical values, so
    // every pick -- and thus the order -- is unchanged.
    std::vector<int> pend_pred0;
    std::vector<int> pend_succ0;
    std::vector<char> nbr_pred_ordered;
    std::vector<char> nbr_succ_ordered;
    if (adjacency) {
        pend_pred0.assign(n, 0);
        pend_succ0.assign(n, 0);
        nbr_pred_ordered.assign(n, 0);
        nbr_succ_ordered.assign(n, 0);
    }

    // pending is self-cleaning (every member is picked and cleared
    // before the set finishes), so one allocation serves all sets.
    std::vector<bool> pending(n, false);
    std::vector<NodeId> members;
    for (const auto &set : sets.sets) {
        members.clear();
        for (NodeId v : set) {
            if (!ordered[v]) {
                pending[v] = true;
                members.push_back(v);
            }
        }

        if (adjacency) {
            for (NodeId v : members) {
                int pred0 = 0;
                for (const AdjEdge &edge : adjacency->inEdges(v)) {
                    if (edge.distance == 0 && edge.node != v &&
                        pending[edge.node]) {
                        ++pred0;
                    }
                }
                pend_pred0[v] = pred0;
                int succ0 = 0;
                for (const AdjEdge &edge : adjacency->outEdges(v)) {
                    if (edge.distance == 0 && edge.node != v &&
                        pending[edge.node]) {
                        ++succ0;
                    }
                }
                pend_succ0[v] = succ0;
                char has_pred = 0;
                for (NodeId other : adjacency->preds(v)) {
                    if (other != v && ordered[other]) {
                        has_pred = 1;
                        break;
                    }
                }
                nbr_pred_ordered[v] = has_pred;
                char has_succ = 0;
                for (NodeId other : adjacency->succs(v)) {
                    if (other != v && ordered[other]) {
                        has_succ = 1;
                        break;
                    }
                }
                nbr_succ_ordered[v] = has_succ;
            }
        }

        size_t left = members.size();
        while (left > 0) {
            // Candidates per direction. The frontier conditions keep
            // the key invariant: a node is ordered only when all of
            // its same-set distance-0 predecessors (top-down) or
            // successors (bottom-up) are already ordered, so the
            // scheduler never faces a fixed closed window.
            NodeId best_td = invalidNode;
            NodeId best_bu = invalidNode;
            NodeId frontier_td = invalidNode;
            NodeId frontier_bu = invalidNode;

            auto betterTopDown = [&](NodeId a, NodeId b) {
                // Deeper first; tie: more critical; tie: smaller id.
                if (depth[a] != depth[b])
                    return depth[a] > depth[b];
                if (height[a] != height[b])
                    return height[a] > height[b];
                return a < b;
            };
            auto betterBottomUp = [&](NodeId a, NodeId b) {
                if (height[a] != height[b])
                    return height[a] > height[b];
                if (depth[a] != depth[b])
                    return depth[a] > depth[b];
                return a < b;
            };

            for (NodeId v : members) {
                if (!pending[v])
                    continue;
                const bool td_ready =
                    adjacency ? pend_pred0[v] == 0
                              : topDownReady(graph, v, pending);
                if (td_ready) {
                    if (frontier_td == invalidNode ||
                        betterTopDown(v, frontier_td)) {
                        frontier_td = v;
                    }
                    const bool nbr = adjacency
                                         ? nbr_pred_ordered[v] != 0
                                         : hasOrderedNeighbor(v, true);
                    if (nbr && (best_td == invalidNode ||
                                betterTopDown(v, best_td))) {
                        best_td = v;
                    }
                }
                const bool bu_ready =
                    adjacency ? pend_succ0[v] == 0
                              : bottomUpReady(graph, v, pending);
                if (bu_ready) {
                    if (frontier_bu == invalidNode ||
                        betterBottomUp(v, frontier_bu)) {
                        frontier_bu = v;
                    }
                    const bool nbr = adjacency
                                         ? nbr_succ_ordered[v] != 0
                                         : hasOrderedNeighbor(v, false);
                    if (nbr && (best_bu == invalidNode ||
                                betterBottomUp(v, best_bu))) {
                        best_bu = v;
                    }
                }
            }

            // Preference order follows the SMS ordering: first the
            // unordered predecessors of the ordered region (bottom-up
            // extension), then its unordered successors (top-down),
            // then a fresh top-down start from the most critical
            // source -- producers before consumers, which is what
            // makes the paper's predicted-copy reservation (PCR)
            // effective -- and finally a bottom-up start. The last
            // arm only triggers if a same-set distance-0 cycle
            // defeated both frontiers, which a well-formed loop
            // cannot have.
            NodeId pick = invalidNode;
            if (best_bu != invalidNode) {
                pick = best_bu;
            } else if (best_td != invalidNode) {
                pick = best_td;
            } else if (frontier_td != invalidNode) {
                pick = frontier_td;
            } else if (frontier_bu != invalidNode) {
                pick = frontier_bu;
            } else {
                for (NodeId v : members) {
                    if (pending[v] &&
                        (pick == invalidNode || betterBottomUp(v, pick))) {
                        pick = v;
                    }
                }
            }

            cams_assert(pick != invalidNode, "no orderable node");
            pending[pick] = false;
            ordered[pick] = true;
            result.push_back(pick);
            --left;
            if (adjacency) {
                // Compact the live list so later rounds skip nothing:
                // each candidate scan is an argmax under a strict
                // total order, so scan order cannot change the pick.
                auto dead =
                    std::find(members.begin(), members.end(), pick);
                *dead = members.back();
                members.pop_back();
                // The pick left the pending set: its distance-0 edges
                // no longer block neighbors, and it is now an ordered
                // neighbor of everything adjacent to it.
                for (const AdjEdge &edge : adjacency->outEdges(pick)) {
                    if (edge.distance == 0 && edge.node != pick &&
                        pending[edge.node]) {
                        --pend_pred0[edge.node];
                    }
                }
                for (const AdjEdge &edge : adjacency->inEdges(pick)) {
                    if (edge.distance == 0 && edge.node != pick &&
                        pending[edge.node]) {
                        --pend_succ0[edge.node];
                    }
                }
                for (NodeId succ : adjacency->succs(pick)) {
                    if (succ != pick)
                        nbr_pred_ordered[succ] = 1;
                }
                for (NodeId pred : adjacency->preds(pick)) {
                    if (pred != pick)
                        nbr_succ_ordered[pred] = 1;
                }
            }
        }
    }

    cams_assert(static_cast<int>(result.size()) == n,
                "swing order missed nodes");
    return result;
}

std::vector<NodeId>
swingOrder(const Dfg &graph, int ii)
{
    const SccInfo sccs = findSccs(graph);
    const NodeSets sets = buildPrioritySets(graph, sccs);
    const TimeAnalysis timing = analyzeTiming(graph, ii);
    return swingOrder(graph, sets, timing);
}

} // namespace cams
