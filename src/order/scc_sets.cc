#include "order/scc_sets.hh"

#include <algorithm>

#include "graph/recmii.hh"
#include "support/logging.hh"

namespace cams
{

NodeSets
buildPrioritySets(const Dfg &graph, const SccInfo &sccs)
{
    struct Candidate
    {
        int recMii;
        int size;
        NodeId minMember;
        std::vector<NodeId> members;
    };

    std::vector<Candidate> recurrences;
    std::vector<NodeId> rest;

    for (int c = 0; c < sccs.numComponents(); ++c) {
        if (sccs.nonTrivial[c]) {
            Candidate candidate;
            candidate.members = sccs.components[c];
            std::sort(candidate.members.begin(), candidate.members.end());
            candidate.recMii = sccRecMii(graph, candidate.members);
            candidate.size = static_cast<int>(candidate.members.size());
            candidate.minMember = candidate.members.front();
            recurrences.push_back(std::move(candidate));
        } else {
            rest.push_back(sccs.components[c][0]);
        }
    }

    std::sort(recurrences.begin(), recurrences.end(),
              [](const Candidate &x, const Candidate &y) {
                  if (x.recMii != y.recMii)
                      return x.recMii > y.recMii;
                  if (x.size != y.size)
                      return x.size > y.size;
                  return x.minMember < y.minMember;
              });

    NodeSets result;
    result.setOf.assign(graph.numNodes(), -1);

    // Following the Swing Modulo Scheduler's set construction, each
    // recurrence set also absorbs the not-yet-chosen nodes lying on
    // paths between previously chosen sets and the new SCC, so the
    // ordering never strands a node between two already-placed
    // neighborhoods.
    auto reachableFrom = [&](const std::vector<bool> &from,
                             bool forward) {
        std::vector<bool> seen = from;
        std::vector<NodeId> stack;
        for (NodeId v = 0; v < graph.numNodes(); ++v) {
            if (seen[v])
                stack.push_back(v);
        }
        while (!stack.empty()) {
            const NodeId at = stack.back();
            stack.pop_back();
            const auto &edges =
                forward ? graph.outEdges(at) : graph.inEdges(at);
            for (EdgeId e : edges) {
                const NodeId next = forward ? graph.edge(e).dst
                                            : graph.edge(e).src;
                if (!seen[next]) {
                    seen[next] = true;
                    stack.push_back(next);
                }
            }
        }
        return seen;
    };

    std::vector<bool> chosen(graph.numNodes(), false);
    for (auto &candidate : recurrences) {
        std::vector<NodeId> members = candidate.members;
        if (std::any_of(chosen.begin(), chosen.end(),
                        [](bool b) { return b; })) {
            std::vector<bool> scc_mask(graph.numNodes(), false);
            for (NodeId v : candidate.members)
                scc_mask[v] = true;
            const auto down_from_chosen = reachableFrom(chosen, true);
            const auto up_from_chosen = reachableFrom(chosen, false);
            const auto down_from_scc = reachableFrom(scc_mask, true);
            const auto up_from_scc = reachableFrom(scc_mask, false);
            for (NodeId v = 0; v < graph.numNodes(); ++v) {
                if (chosen[v] || scc_mask[v] || result.setOf[v] != -1)
                    continue;
                const bool between =
                    (down_from_chosen[v] && up_from_scc[v]) ||
                    (down_from_scc[v] && up_from_chosen[v]);
                if (between)
                    members.push_back(v);
            }
            std::sort(members.begin(), members.end());
        }
        for (NodeId node : members) {
            result.setOf[node] = result.numSets();
            chosen[node] = true;
        }
        result.sets.push_back(std::move(members));
        result.recMii.push_back(candidate.recMii);
    }

    std::vector<NodeId> remaining;
    for (NodeId node : rest) {
        if (result.setOf[node] == -1)
            remaining.push_back(node);
    }
    std::sort(remaining.begin(), remaining.end());
    if (!remaining.empty()) {
        for (NodeId node : remaining)
            result.setOf[node] = result.numSets();
        result.sets.push_back(std::move(remaining));
        result.recMii.push_back(1);
    }
    return result;
}

} // namespace cams
