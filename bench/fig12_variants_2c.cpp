/**
 * @file
 * Reproduces Figure 12: the four assignment variants on the
 * two-cluster machine (2 buses, 4 GP units per cluster, 1 port).
 *
 * Paper shape: Heuristic-Iterative dominates with ~99% of loops at
 * x = 0; dropping iteration costs 2-11%, dropping the heuristic
 * costs 1-9%.
 */

#include "bench/common.hh"
#include "machine/configs.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    const MachineDesc machine = busedGpMachine(2, 2, 1);

    std::vector<DeviationSeries> series;
    struct Variant
    {
        const char *label;
        bool iterative;
        bool heuristic;
    };
    const Variant variants[] = {
        {"heuristic-iterative", true, true},
        {"simple-iterative", true, false},
        {"heuristic", false, true},
        {"simple", false, false},
    };
    for (const Variant &variant : variants) {
        CompileOptions options;
        options.assign.iterative = variant.iterative;
        options.assign.fullHeuristic = variant.heuristic;
        series.push_back(
            benchutil::runSeries(variant.label, machine, options));
    }
    benchutil::printFigure(
        "Figure 12: assignment variants, 2 clusters x 4 GP, 2 buses, "
        "1 port",
        series);
    return 0;
}
