/**
 * @file
 * Reproduces Table 2: the operation latencies used by every machine
 * model, read back from the opcode tables so the printout can never
 * drift from the implementation.
 */

#include <iostream>

#include "graph/opcode.hh"
#include "report/table.hh"

int
main()
{
    using namespace cams;
    std::cout << "== Table 2: operation latencies ==\n";
    TextTable table({"operation", "mnemonic", "fu class", "latency"});
    const struct
    {
        const char *name;
        Opcode op;
    } rows[] = {
        {"ALU", Opcode::IntAlu},       {"Shift", Opcode::IntShift},
        {"Branch", Opcode::Branch},    {"Store", Opcode::Store},
        {"FP-Add", Opcode::FpAdd},     {"Copy", Opcode::Copy},
        {"Load", Opcode::Load},        {"FP-Mult", Opcode::FpMult},
        {"FP-Div", Opcode::FpDiv},     {"FP-SQRT", Opcode::FpSqrt},
    };
    for (const auto &row : rows) {
        table.addRow({row.name, opcodeName(row.op),
                      fuClassName(opcodeFuClass(row.op)),
                      std::to_string(opcodeLatency(row.op)) + " cycle" +
                          (opcodeLatency(row.op) > 1 ? "s" : "")});
    }
    std::cout << table.render();
    return 0;
}
