/**
 * @file
 * Reproduces Figure 17: port-count sweep {1, 2, 4} on the
 * four-cluster GP machine with 4 buses. Paper shape: one port hurts
 * ~12% of loops, two are the knee, four are marginal.
 */

#include "bench/common.hh"
#include "machine/configs.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    std::vector<DeviationSeries> series;
    for (int ports : {1, 2, 4}) {
        series.push_back(benchutil::runSeries(
            std::to_string(ports) + " port(s)",
            busedGpMachine(4, 4, ports)));
    }
    benchutil::printFigure(
        "Figure 17: varying ports, 4 clusters x 4 GP, 4 buses", series);
    return 0;
}
