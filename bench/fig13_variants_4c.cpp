/**
 * @file
 * Reproduces Figure 13: the four assignment variants on the
 * four-cluster machine (4 buses, 4 GP units per cluster, 2 ports).
 */

#include "bench/common.hh"
#include "machine/configs.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    const MachineDesc machine = busedGpMachine(4, 4, 2);

    std::vector<DeviationSeries> series;
    struct Variant
    {
        const char *label;
        bool iterative;
        bool heuristic;
    };
    const Variant variants[] = {
        {"heuristic-iterative", true, true},
        {"simple-iterative", true, false},
        {"heuristic", false, true},
        {"simple", false, false},
    };
    for (const Variant &variant : variants) {
        CompileOptions options;
        options.assign.iterative = variant.iterative;
        options.assign.fullHeuristic = variant.heuristic;
        series.push_back(
            benchutil::runSeries(variant.label, machine, options));
    }
    benchutil::printFigure(
        "Figure 13: assignment variants, 4 clusters x 4 GP, 4 buses, "
        "2 ports",
        series);
    return 0;
}
