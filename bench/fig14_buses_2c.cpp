/**
 * @file
 * Reproduces Figure 14: bus-count sweep {1, 2, 4} on the two-cluster
 * GP machine (1 port). Paper shape: one bus hurts ~4% of loops; two
 * buses suffice; four add nothing.
 */

#include "bench/common.hh"
#include "machine/configs.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    std::vector<DeviationSeries> series;
    for (int buses : {1, 2, 4}) {
        series.push_back(benchutil::runSeries(
            std::to_string(buses) + " bus(es)",
            busedGpMachine(2, buses, 1)));
    }
    benchutil::printFigure(
        "Figure 14: varying buses, 2 clusters x 4 GP, 1 port", series);
    return 0;
}
