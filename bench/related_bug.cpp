/**
 * @file
 * Related-work comparison (paper §1.4): the paper argues that
 * acyclic, schedule-length-oriented partitioners like Ellis's BUG do
 * not transfer to modulo scheduling because they ignore recurrence
 * criticality and copy-resource prediction. This experiment runs a
 * BUG-flavored policy (acyclic order, minimal-completion-time
 * placement) against the paper's algorithm on the 2- and 4-cluster
 * machines -- with and without the recurrence-bearing loops of the
 * suite separated out.
 */

#include <iostream>

#include "bench/common.hh"
#include "graph/scc.hh"
#include "machine/configs.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);

    for (const MachineDesc &machine :
         {busedGpMachine(2, 2, 1), busedGpMachine(4, 4, 2)}) {
        CompileOptions paper;
        CompileOptions bug;
        bug.assign.policy = AssignPolicy::AcyclicBug;

        std::vector<DeviationSeries> series;
        series.push_back(
            benchutil::runSeries("paper algorithm", machine, paper));
        series.push_back(
            benchutil::runSeries("BUG-style baseline", machine, bug));

        // The same comparison restricted to loops with recurrences,
        // where the paper predicts the gap.
        std::vector<Dfg> cyclic;
        for (const Dfg &loop : benchutil::sharedSuite()) {
            if (findSccs(loop).numNonTrivial() > 0)
                cyclic.push_back(loop);
        }
        const auto baseline = unifiedBaseline(
            cyclic, machine.unifiedEquivalent(), paper);
        series.push_back(runClusteredSeries(
            cyclic, machine, baseline, paper, "paper (SCC loops)"));
        series.push_back(runClusteredSeries(
            cyclic, machine, baseline, bug, "BUG (SCC loops)"));

        benchutil::printFigure(
            "Related work: paper algorithm vs. BUG-style baseline on " +
                machine.name,
            series);
    }
    return 0;
}
