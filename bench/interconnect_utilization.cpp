/**
 * @file
 * Interconnect occupancy behind the bus/port sweeps: average bus,
 * link and port utilization of the compiled kernels on each machine
 * of Figures 14-17 plus the grid. The knees in those figures appear
 * exactly where average utilization drops away from saturation.
 */

#include <iostream>

#include "bench/common.hh"
#include "machine/configs.hh"
#include "report/interconnect.hh"
#include "support/stats.hh"
#include "support/str.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);

    const std::vector<MachineDesc> machines = {
        busedGpMachine(2, 1, 1), busedGpMachine(2, 2, 1),
        busedGpMachine(2, 4, 1), busedGpMachine(4, 2, 2),
        busedGpMachine(4, 4, 2), busedGpMachine(4, 8, 2),
        gridMachine(),
    };

    TextTable table({"machine", "avg bus/link util", "max", "avg rd "
                     "port util", "avg wr port util", "avg copies"});
    for (const MachineDesc &machine : machines) {
        const ResourceModel model(machine);
        RunningStat channel;
        RunningStat read_ports;
        RunningStat write_ports;
        RunningStat copies;
        const BatchOutcome batch = BatchRunner::run(
            clusteredJobs(benchutil::sharedSuite(), machine),
            benchutil::jobCount());
        for (const CompileResult &result : batch.results) {
            if (!result.success ||
                result.degraded != DegradeLevel::None) {
                continue;
            }
            const InterconnectStats stats = computeInterconnectStats(
                result.loop, result.schedule, model);
            if (machine.broadcast()) {
                channel.add(stats.busUtilization);
            } else {
                for (double link : stats.linkUtilization)
                    channel.add(link);
            }
            read_ports.add(stats.readPortUtilization);
            write_ports.add(stats.writePortUtilization);
            copies.add(stats.copies);
        }
        table.addRow({machine.name, formatFixed(channel.mean(), 3),
                      formatFixed(channel.max(), 2),
                      formatFixed(read_ports.mean(), 3),
                      formatFixed(write_ports.mean(), 3),
                      formatFixed(copies.mean(), 2)});
    }
    std::cout << "== Interconnect utilization across the suite ==\n"
              << table.render();
    return 0;
}
