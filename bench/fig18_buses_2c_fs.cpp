/**
 * @file
 * Reproduces Figure 18: bus sweep on the two-cluster machine with
 * four fully-specialized units per cluster (1 mem, 2 int, 1 FP),
 * 1 port. Paper shape: ~95% of loops match the unified II at 2 buses.
 */

#include "bench/common.hh"
#include "machine/configs.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    std::vector<DeviationSeries> series;
    for (int buses : {1, 2, 4}) {
        series.push_back(benchutil::runSeries(
            std::to_string(buses) + " bus(es)",
            busedFsMachine(2, buses, 1)));
    }
    benchutil::printFigure(
        "Figure 18: varying buses, 2 clusters x 4 FS, 1 port", series);
    return 0;
}
