/**
 * @file
 * Reproduces the Section 6 grid result: the four-cluster grid (three
 * FS units per cluster, two point-to-point links per cluster, no
 * broadcast) against its unified equivalent.
 *
 * Paper shape: 92% of loops match the unified II; 98% deviate by at
 * most one cycle.
 */

#include "bench/common.hh"
#include "machine/configs.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    const DeviationSeries series =
        benchutil::runSeries("4c grid (2 links/cluster)", gridMachine());
    benchutil::printFigure(
        "Grid result: 4-cluster point-to-point grid, 1m/1i/1f per "
        "cluster (paper: 92% at x=0, 98% within 1)",
        {series});
    return 0;
}
