/**
 * @file
 * Modulo scheduling vs. unroll-and-list-schedule (the paper's §1.4:
 * acyclic techniques "can be extended to loops by performing loop
 * unrolling"). For unroll factors 1/2/4/8 on the unified 8-wide GP
 * machine -- the most favorable setting for unrolling, with no
 * clustering penalty at all -- reports average cycles per original
 * iteration against the modulo schedule's II, split by whether the
 * loop carries a recurrence.
 */

#include <iostream>

#include "bench/common.hh"
#include "graph/scc.hh"
#include "machine/configs.hh"
#include "support/stats.hh"
#include "support/str.hh"
#include "transform/unroll.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    const MachineDesc machine = unifiedGpMachine(8);

    RunningStat modulo_all;
    RunningStat modulo_scc;
    std::map<int, RunningStat> unrolled_all;
    std::map<int, RunningStat> unrolled_scc;
    const int factors[] = {1, 2, 4, 8};

    int wins = 0;
    int total = 0;
    const BatchOutcome batch = BatchRunner::run(
        unifiedJobs(benchutil::sharedSuite(), machine),
        benchutil::jobCount());
    for (size_t i = 0; i < batch.results.size(); ++i) {
        const Dfg &loop = benchutil::sharedSuite()[i];
        const CompileResult &result = batch.results[i];
        if (!result.success || result.degraded != DegradeLevel::None)
            continue;
        const bool has_scc = findSccs(loop).numNonTrivial() > 0;
        modulo_all.add(result.ii);
        if (has_scc)
            modulo_scc.add(result.ii);

        double best_unrolled = 1e18;
        for (int factor : factors) {
            const double cycles =
                unrolledThroughput(loop, machine, factor);
            unrolled_all[factor].add(cycles);
            if (has_scc)
                unrolled_scc[factor].add(cycles);
            best_unrolled = std::min(best_unrolled, cycles);
        }
        ++total;
        if (result.ii <= best_unrolled)
            ++wins;
    }

    std::cout << "== Modulo scheduling vs. unroll-and-schedule "
                 "(8-wide unified GP, "
              << total << " loops) ==\n";
    TextTable table({"technique", "avg cycles/iter (all)",
                     "avg cycles/iter (SCC loops)"});
    table.addRow({"modulo schedule (II)",
                  formatFixed(modulo_all.mean(), 2),
                  formatFixed(modulo_scc.mean(), 2)});
    for (int factor : factors) {
        table.addRow({"unroll x" + std::to_string(factor) +
                          " + list schedule",
                      formatFixed(unrolled_all[factor].mean(), 2),
                      formatFixed(unrolled_scc[factor].mean(), 2)});
    }
    std::cout << table.render();
    std::cout << "modulo schedule at least ties the best unroll "
                 "factor on "
              << formatFixed(100.0 * wins / std::max(1, total), 1)
              << "% of loops\n";
    return 0;
}
