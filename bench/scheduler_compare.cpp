/**
 * @file
 * Phase-2 scheduler comparison: the iterative Swing scheduler (the
 * paper's choice) against Rau's IMS, on the unified 8-wide machine
 * and on the clustered 2x4-GP machine over the full suite. Reports
 * how often each reaches the MII (unified) or the unified baseline II
 * (clustered), plus the average achieved II.
 *
 * The binary doubles as the batch-engine perf tracker: it re-runs the
 * clustered Swing workload through BatchRunner at --jobs 1 and at the
 * requested --jobs N, asserts the results match, and writes the
 * timing summary to BENCH_batch.json so the speedup trajectory is
 * recorded PR over PR.
 */

#include <fstream>
#include <iostream>

#include "bench/common.hh"
#include "machine/configs.hh"
#include "sched/mii.hh"
#include "support/stats.hh"
#include "support/str.hh"

namespace
{

using namespace cams;

/** Times the clustered suite at one thread and at --jobs threads and
 *  writes BENCH_batch.json with the observed speedup. */
void
writeBatchBench(const MachineDesc &machine)
{
    const std::vector<CompileJob> jobs = clusteredJobs(
        benchutil::sharedSuite(), machine, benchutil::withTrace({}));

    std::cerr << "timing batch engine (" << jobs.size()
              << " jobs, 1 vs " << benchutil::jobCount()
              << " threads)..." << std::endl;
    const BatchOutcome serial = BatchRunner::run(jobs, 1);
    const BatchOutcome parallel =
        BatchRunner::run(jobs, benchutil::jobCount());

    // The compile path is single-threaded per job: thread count must
    // not change any result.
    for (size_t i = 0; i < jobs.size(); ++i) {
        const CompileResult &a = serial.results[i];
        const CompileResult &b = parallel.results[i];
        if (a.success != b.success || a.ii != b.ii ||
            a.copies != b.copies || a.attempts != b.attempts ||
            a.failure != b.failure || a.degraded != b.degraded) {
            std::cerr << "batch determinism violation on job " << i
                      << "\n";
            std::abort();
        }
    }

    const double speedup =
        parallel.stats.wallMillis > 0.0
            ? serial.stats.wallMillis / parallel.stats.wallMillis
            : 0.0;
    std::ofstream json("BENCH_batch.json");
    json << "{\"bench\":\"scheduler_compare\","
         << "\"loops\":" << jobs.size() << ","
         << "\"machine\":\"" << machine.name << "\","
         << "\"jobs\":" << benchutil::jobCount() << ","
         << "\"serial_wall_ms\":" << serial.stats.wallMillis << ","
         << "\"parallel_wall_ms\":" << parallel.stats.wallMillis << ","
         << "\"speedup\":" << formatFixed(speedup, 3) << ","
         << "\"serial\":" << serial.stats.toJson() << ","
         << "\"parallel\":" << parallel.stats.toJson() << "}\n";
    std::cout << "batch speedup at " << benchutil::jobCount()
              << " jobs: " << formatFixed(speedup, 2)
              << "x (BENCH_batch.json written)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    const MachineDesc clustered = busedGpMachine(2, 2, 1);
    const MachineDesc unified = clustered.unifiedEquivalent();

    TextTable table({"scheduler", "unified: %II=MII", "avg II/MII",
                     "clustered: %match", "avg deviation"});

    for (SchedulerKind kind :
         {SchedulerKind::Swing, SchedulerKind::Iterative}) {
        CompileOptions options;
        options.scheduler = kind;

        long at_mii = 0;
        long total = 0;
        RunningStat ratio;
        const BatchOutcome batch = BatchRunner::run(
            unifiedJobs(benchutil::sharedSuite(), unified,
                        benchutil::withTrace(options)),
            benchutil::jobCount());
        for (const CompileResult &result : batch.results) {
            if (!result.success ||
                result.degraded != DegradeLevel::None) {
                continue;
            }
            ++total;
            if (result.ii == result.mii.mii)
                ++at_mii;
            ratio.add(static_cast<double>(result.ii) / result.mii.mii);
        }

        const DeviationSeries series = benchutil::runSeries(
            kind == SchedulerKind::Swing ? "sms" : "ims", clustered,
            options);
        RunningStat deviation;
        for (const auto &[value, count] : series.deviations.bins()) {
            for (uint64_t i = 0; i < count; ++i)
                deviation.add(static_cast<double>(value));
        }

        table.addRow({
            kind == SchedulerKind::Swing ? "swing (iterative)" : "ims",
            formatFixed(100.0 * at_mii / std::max(1L, total), 1),
            formatFixed(ratio.mean(), 3),
            formatFixed(series.percentAt(0), 1),
            formatFixed(deviation.mean(), 3),
        });
    }

    std::cout << "== Scheduler comparison (suite of "
              << benchutil::sharedSuite().size() << " loops) ==\n"
              << table.render();

    writeBatchBench(clustered);
    benchutil::writeObservability();
    return 0;
}
