/**
 * @file
 * Phase-2 scheduler comparison: the iterative Swing scheduler (the
 * paper's choice) against Rau's IMS, on the unified 8-wide machine
 * and on the clustered 2x4-GP machine over the full suite. Reports
 * how often each reaches the MII (unified) or the unified baseline II
 * (clustered), plus the average achieved II.
 */

#include <iostream>

#include "bench/common.hh"
#include "machine/configs.hh"
#include "sched/mii.hh"
#include "support/stats.hh"
#include "support/str.hh"

int
main()
{
    using namespace cams;
    const MachineDesc clustered = busedGpMachine(2, 2, 1);
    const MachineDesc unified = clustered.unifiedEquivalent();

    TextTable table({"scheduler", "unified: %II=MII", "avg II/MII",
                     "clustered: %match", "avg deviation"});

    for (SchedulerKind kind :
         {SchedulerKind::Swing, SchedulerKind::Iterative}) {
        CompileOptions options;
        options.scheduler = kind;

        long at_mii = 0;
        long total = 0;
        RunningStat ratio;
        for (const Dfg &loop : benchutil::sharedSuite()) {
            const CompileResult result =
                compileUnified(loop, unified, options);
            if (!result.success)
                continue;
            ++total;
            if (result.ii == result.mii.mii)
                ++at_mii;
            ratio.add(static_cast<double>(result.ii) / result.mii.mii);
        }

        const DeviationSeries series = benchutil::runSeries(
            kind == SchedulerKind::Swing ? "sms" : "ims", clustered,
            options);
        RunningStat deviation;
        for (const auto &[value, count] : series.deviations.bins()) {
            for (uint64_t i = 0; i < count; ++i)
                deviation.add(static_cast<double>(value));
        }

        table.addRow({
            kind == SchedulerKind::Swing ? "swing (iterative)" : "ims",
            formatFixed(100.0 * at_mii / std::max(1L, total), 1),
            formatFixed(ratio.mean(), 3),
            formatFixed(series.percentAt(0), 1),
            formatFixed(deviation.mean(), 3),
        });
    }

    std::cout << "== Scheduler comparison (suite of "
              << benchutil::sharedSuite().size() << " loops) ==\n"
              << table.render();
    return 0;
}
