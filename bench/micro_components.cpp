/**
 * @file
 * google-benchmark microbenchmarks of the compiler's building blocks:
 * SCC decomposition, RecMII, swing ordering, MRT operations, cluster
 * assignment and the two schedulers, over generated loops of several
 * sizes.
 */

#include <benchmark/benchmark.h>

#include "assign/assigner.hh"
#include "frontend/parser.hh"
#include "graph/recmii.hh"
#include "graph/scc.hh"
#include "machine/configs.hh"
#include "order/swing_order.hh"
#include "pipeline/driver.hh"
#include "sched/mii.hh"
#include "sim/compare.hh"
#include "workload/generator.hh"

namespace
{

using namespace cams;

Dfg
loopOfSize(int target_nodes)
{
    // Deterministically pick a seed whose loop lands near the target.
    GeneratorParams params;
    params.minNodes = target_nodes;
    params.maxNodes = target_nodes;
    return generateLoop(42, params);
}

void
BM_SccDecomposition(benchmark::State &state)
{
    const Dfg graph = loopOfSize(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(findSccs(graph));
}
BENCHMARK(BM_SccDecomposition)->Arg(16)->Arg(64)->Arg(161);

void
BM_RecMii(benchmark::State &state)
{
    const Dfg graph = loopOfSize(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(recMii(graph));
}
BENCHMARK(BM_RecMii)->Arg(16)->Arg(64)->Arg(161);

void
BM_SwingOrder(benchmark::State &state)
{
    const Dfg graph = loopOfSize(static_cast<int>(state.range(0)));
    const int ii = recMii(graph);
    for (auto _ : state)
        benchmark::DoNotOptimize(swingOrder(graph, ii));
}
BENCHMARK(BM_SwingOrder)->Arg(16)->Arg(64)->Arg(161);

void
BM_MrtReserveRelease(benchmark::State &state)
{
    const ResourceModel model(busedGpMachine(4, 4, 2));
    Mrt mrt(model, static_cast<int>(state.range(0)));
    const auto request = model.copyRequest(0, {1, 2});
    for (auto _ : state) {
        auto res = mrt.reserve(request);
        benchmark::DoNotOptimize(res);
        if (res)
            mrt.release(*res);
    }
}
BENCHMARK(BM_MrtReserveRelease)->Arg(4)->Arg(16)->Arg(64);

void
BM_ClusterAssignment(benchmark::State &state)
{
    const Dfg graph = loopOfSize(static_cast<int>(state.range(0)));
    const MachineDesc machine = busedGpMachine(4, 4, 2);
    const ResourceModel model(machine);
    const MiiInfo mii = computeMii(graph, machine.unifiedEquivalent());
    const ClusterAssigner assigner(model);
    for (auto _ : state) {
        // Assign at a comfortable II so the benchmark measures the
        // normal path, not failure handling.
        benchmark::DoNotOptimize(assigner.run(graph, mii.mii + 2));
    }
}
BENCHMARK(BM_ClusterAssignment)->Arg(16)->Arg(64)->Arg(161);

void
BM_CompileClusteredSwing(benchmark::State &state)
{
    const Dfg graph = loopOfSize(static_cast<int>(state.range(0)));
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(compileClustered(graph, machine));
}
BENCHMARK(BM_CompileClusteredSwing)->Arg(16)->Arg(64)->Arg(161);

void
BM_CompileClusteredIms(benchmark::State &state)
{
    const Dfg graph = loopOfSize(static_cast<int>(state.range(0)));
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    CompileOptions options;
    options.scheduler = SchedulerKind::Iterative;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            compileClustered(graph, machine, options));
    }
}
BENCHMARK(BM_CompileClusteredIms)->Arg(16)->Arg(64)->Arg(161);

void
BM_FrontendParse(benchmark::State &state)
{
    const std::string source =
        "loop bench { t = (a[i-1] + a[i] + a[i+1]) / 3.0; y[i] = t; "
        "s += t * t; x[i] = z[i] * (y0 - x[i-1]); }";
    for (auto _ : state) {
        Dfg graph;
        std::string error;
        benchmark::DoNotOptimize(parseLoopSource(source, graph, error));
    }
}
BENCHMARK(BM_FrontendParse);

void
BM_VliwSimulation(benchmark::State &state)
{
    const Dfg graph = loopOfSize(static_cast<int>(state.range(0)));
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const CompileResult result = compileClustered(graph, machine);
    if (!result.success) {
        state.SkipWithError("compilation failed");
        return;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(checkEquivalence(
            graph, result.loop, result.schedule, machine, 8));
    }
}
BENCHMARK(BM_VliwSimulation)->Arg(16)->Arg(64);

void
BM_CompileUnified(benchmark::State &state)
{
    const Dfg graph = loopOfSize(static_cast<int>(state.range(0)));
    const MachineDesc machine = unifiedGpMachine(8);
    for (auto _ : state)
        benchmark::DoNotOptimize(compileUnified(graph, machine));
}
BENCHMARK(BM_CompileUnified)->Arg(16)->Arg(64)->Arg(161);

} // namespace

BENCHMARK_MAIN();
