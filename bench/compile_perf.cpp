/**
 * @file
 * Compile-time benchmark of the incremental pipeline: runs the shared
 * suite through the clustered driver twice -- once with the per-loop
 * LoopContext cache and word-scan MRTs (CompileOptions::incremental,
 * the default) and once with the from-scratch pre-cache pipeline --
 * and writes the per-loop latency comparison to
 * BENCH_compile_perf.json.
 *
 * The run doubles as the A/B determinism harness: every loop's result
 * must be byte-identical between the two arms (II, every start cycle,
 * every placement, every bookkeeping counter), or the binary aborts.
 * That is the contract that makes the caching safe to leave on.
 *
 * Both arms run on one worker thread so per-loop wall times measure
 * the compile itself, not scheduler contention; each arm is repeated
 * --reps times (default 3) and the fastest repetition is reported.
 * CI gates on the output via tools/check_compile_perf.py against the
 * checked-in bench/baselines/compile_perf_baseline.json.
 */

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "machine/configs.hh"
#include "support/str.hh"

namespace
{

using namespace cams;

/** Per-arm latency summary over the suite. */
struct ArmTimes
{
    BatchOutcome outcome; ///< fastest repetition
    double wallMs = 0.0;
    double meanNs = 0.0;
    double p50Ns = 0.0;
    double p90Ns = 0.0;
};

double
percentileNs(std::vector<double> sortedMs, double fraction)
{
    if (sortedMs.empty())
        return 0.0;
    const size_t index = std::min(
        sortedMs.size() - 1,
        static_cast<size_t>(fraction * (sortedMs.size() - 1) + 0.5));
    return sortedMs[index] * 1e6;
}

ArmTimes
timeArm(const std::vector<CompileJob> &jobs, int reps)
{
    ArmTimes arm;
    for (int rep = 0; rep < reps; ++rep) {
        BatchOutcome outcome = BatchRunner::run(jobs, 1);
        if (rep == 0 || outcome.stats.cpuMillis < arm.wallMs) {
            arm.wallMs = outcome.stats.cpuMillis;
            arm.outcome = std::move(outcome);
        }
    }
    std::vector<double> sorted = arm.outcome.jobMillis;
    std::sort(sorted.begin(), sorted.end());
    arm.meanNs = jobs.empty()
                     ? 0.0
                     : arm.outcome.stats.cpuMillis * 1e6 / jobs.size();
    arm.p50Ns = percentileNs(sorted, 0.50);
    arm.p90Ns = percentileNs(sorted, 0.90);
    return arm;
}

/** Demands byte-identical compile results between the arms. */
void
checkDeterminism(const BatchOutcome &cached,
                 const BatchOutcome &scratch)
{
    auto die = [](size_t i, const char *what) {
        std::cerr << "A/B determinism violation on loop " << i << ": "
                  << what << " differs between the incremental and "
                  << "from-scratch pipelines\n";
        std::abort();
    };
    for (size_t i = 0; i < cached.results.size(); ++i) {
        const CompileResult &a = cached.results[i];
        const CompileResult &b = scratch.results[i];
        if (a.success != b.success)
            die(i, "success");
        if (a.ii != b.ii || a.mii.mii != b.mii.mii)
            die(i, "II");
        if (a.attempts != b.attempts ||
            a.assignRetries != b.assignRetries)
            die(i, "search trajectory");
        if (a.copies != b.copies || a.evictions != b.evictions)
            die(i, "assignment");
        if (a.failure != b.failure || a.degraded != b.degraded)
            die(i, "failure classification");
        if (!a.success)
            continue;
        if (a.schedule.startCycle != b.schedule.startCycle)
            die(i, "schedule");
        if (a.loop.placement.size() != b.loop.placement.size())
            die(i, "placement count");
        for (size_t v = 0; v < a.loop.placement.size(); ++v) {
            if (a.loop.placement[v].cluster !=
                    b.loop.placement[v].cluster ||
                a.loop.placement[v].copyDsts !=
                    b.loop.placement[v].copyDsts) {
                die(i, "placement");
            }
        }
    }
}

std::string
armJson(const ArmTimes &arm, size_t loops)
{
    const BatchStats &stats = arm.outcome.stats;
    const PhaseTimes totals = [&] {
        PhaseTimes sum;
        for (const CompileResult &result : arm.outcome.results) {
            sum.orderMs += result.phaseMs.orderMs;
            sum.assignMs += result.phaseMs.assignMs;
            sum.routeMs += result.phaseMs.routeMs;
            sum.scheduleMs += result.phaseMs.scheduleMs;
            sum.verifyMs += result.phaseMs.verifyMs;
            sum.totalMs += result.phaseMs.totalMs;
        }
        return sum;
    }();
    auto perLoopNs = [&](double ms) {
        return loops == 0 ? 0.0 : ms * 1e6 / static_cast<double>(loops);
    };
    std::ostringstream os;
    os << "{\"cpu_ms\":" << formatFixed(stats.cpuMillis, 3) << ","
       << "\"mean_ns_per_loop\":" << formatFixed(arm.meanNs, 0) << ","
       << "\"p50_ns\":" << formatFixed(arm.p50Ns, 0) << ","
       << "\"p90_ns\":" << formatFixed(arm.p90Ns, 0) << ","
       << "\"phase_ns_per_loop\":{"
       << "\"assign\":" << formatFixed(perLoopNs(totals.assignMs), 0)
       << ",\"order\":" << formatFixed(perLoopNs(totals.orderMs), 0)
       << ",\"route\":" << formatFixed(perLoopNs(totals.routeMs), 0)
       << ",\"schedule\":"
       << formatFixed(perLoopNs(totals.scheduleMs), 0)
       << ",\"verify\":" << formatFixed(perLoopNs(totals.verifyMs), 0)
       << ",\"total\":" << formatFixed(perLoopNs(totals.totalMs), 0)
       << "},"
       << "\"ctx_hits\":" << stats.ctxHits << ","
       << "\"ctx_misses\":" << stats.ctxMisses << ","
       << "\"mrt_word_scans\":" << stats.mrtWordScans << "}";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    int reps = 3;
    if (const char *env = std::getenv("CAMS_PERF_REPS")) {
        const int value = std::atoi(env);
        if (value > 0)
            reps = value;
    }

    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const std::vector<Dfg> &suite = benchutil::sharedSuite();

    CompileOptions cached;
    cached.incremental = true;
    CompileOptions scratch = cached;
    scratch.incremental = false;

    std::cerr << "timing " << suite.size() << " loops on "
              << machine.name << ", " << reps
              << " reps per arm (incremental vs from-scratch)..."
              << std::endl;
    const ArmTimes incremental =
        timeArm(clusteredJobs(suite, machine, cached), reps);
    const ArmTimes baseline =
        timeArm(clusteredJobs(suite, machine, scratch), reps);
    checkDeterminism(incremental.outcome, baseline.outcome);

    const double speedupMean =
        incremental.meanNs > 0.0 ? baseline.meanNs / incremental.meanNs
                                 : 0.0;
    const double speedupP50 =
        incremental.p50Ns > 0.0 ? baseline.p50Ns / incremental.p50Ns
                                : 0.0;
    // Machine-independent cost of the incremental arm: its per-loop
    // time in units of the same machine's from-scratch time. The CI
    // gate tracks this ratio across PRs, so perf regressions surface
    // without depending on runner hardware.
    const double normalizedMean =
        baseline.meanNs > 0.0 ? incremental.meanNs / baseline.meanNs
                              : 0.0;

    std::ofstream json("BENCH_compile_perf.json");
    json << "{\"bench\":\"compile_perf\","
         << "\"loops\":" << suite.size() << ","
         << "\"machine\":\"" << machine.name << "\","
         << "\"reps\":" << reps << ","
         << "\"identical_schedules\":true,"
         << "\"speedup_mean\":" << formatFixed(speedupMean, 3) << ","
         << "\"speedup_p50\":" << formatFixed(speedupP50, 3) << ","
         << "\"normalized_mean\":" << formatFixed(normalizedMean, 4)
         << ","
         << "\"incremental\":" << armJson(incremental, suite.size())
         << ","
         << "\"baseline\":" << armJson(baseline, suite.size()) << "}\n";

    std::cout << "compile perf over " << suite.size()
              << " loops (best of " << reps << " reps):\n"
              << "  from-scratch: "
              << formatFixed(baseline.meanNs / 1000.0, 1)
              << " us/loop mean, p50 "
              << formatFixed(baseline.p50Ns / 1000.0, 1) << " p90 "
              << formatFixed(baseline.p90Ns / 1000.0, 1) << "\n"
              << "  incremental:  "
              << formatFixed(incremental.meanNs / 1000.0, 1)
              << " us/loop mean, p50 "
              << formatFixed(incremental.p50Ns / 1000.0, 1) << " p90 "
              << formatFixed(incremental.p90Ns / 1000.0, 1) << "\n"
              << "  speedup: " << formatFixed(speedupMean, 2)
              << "x mean, " << formatFixed(speedupP50, 2)
              << "x p50; schedules identical\n"
              << "BENCH_compile_perf.json written\n";
    benchutil::writeObservability();
    return 0;
}
