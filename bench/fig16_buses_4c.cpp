/**
 * @file
 * Reproduces Figure 16: bus-count sweep {2, 4, 8} on the four-cluster
 * GP machine (2 ports). Paper shape: two buses hurt >10% of loops;
 * four are the knee; eight add ~3%.
 */

#include "bench/common.hh"
#include "machine/configs.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    std::vector<DeviationSeries> series;
    for (int buses : {2, 4, 8}) {
        series.push_back(benchutil::runSeries(
            std::to_string(buses) + " buses",
            busedGpMachine(4, buses, 2)));
    }
    benchutil::printFigure(
        "Figure 16: varying buses, 4 clusters x 4 GP, 2 ports", series);
    return 0;
}
