/**
 * @file
 * Reproduces Table 1: statistics of the loop suite (our calibrated
 * synthetic stand-in for the paper's 1327 Perfect Club / SPEC-89 /
 * Livermore loops), printed next to the paper's numbers.
 */

#include <iostream>

#include "report/table.hh"
#include "support/str.hh"
#include "workload/suite.hh"

int
main()
{
    using namespace cams;
    const auto suite = buildSuite();
    const SuiteStats stats = computeSuiteStats(suite);

    std::cout << "== Table 1: loop statistics (" << stats.totalLoops
              << " loops, " << stats.loopsWithSccs
              << " containing SCCs; paper: 1327 / 301) ==\n";

    TextTable table({"statistic", "min", "avg", "max", "paper(min)",
                     "paper(avg)", "paper(max)"});
    auto row = [&](const std::string &name, const RunningStat &stat,
                   const std::string &pmin, const std::string &pavg,
                   const std::string &pmax) {
        table.addRow({name, formatFixed(stat.min(), 0),
                      formatFixed(stat.mean(), 1),
                      formatFixed(stat.max(), 0), pmin, pavg, pmax});
    };
    row("nodes", stats.nodes, "2", "17.5", "161");
    row("SCCs per loop", stats.sccsPerLoop, "0", "0.4", "6");
    row("nodes in non-trivial SCCs", stats.sccNodes, "2", "9.0", "48");
    row("edges", stats.edges, "1", "22.5", "232");
    std::cout << table.render();
    return 0;
}
