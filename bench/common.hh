/**
 * @file
 * Shared plumbing for the experiment binaries: the cached loop suite,
 * per-unified-machine baseline caching, figure printing, and the
 * common command-line surface.
 *
 * Every figure/table binary runs the full 1327-loop suite by default
 * and submits its compiles through the parallel batch engine. Knobs:
 *
 *   --jobs N          worker threads (default: CAMS_JOBS env or the
 *                     hardware concurrency); results are identical
 *                     for every value
 *   --seed S          master seed of the synthetic suite (default:
 *                     the published experiments' seed)
 *   CAMS_SUITE_SIZE   subsample to the first n loops for a quick look
 */

#ifndef CAMS_BENCH_COMMON_HH
#define CAMS_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "pipeline/batch.hh"
#include "pipeline/driver.hh"
#include "report/deviation.hh"
#include "report/table.hh"
#include "support/threadpool.hh"
#include "workload/suite.hh"

namespace cams
{
namespace benchutil
{

inline int
suiteSize()
{
    if (const char *env = std::getenv("CAMS_SUITE_SIZE")) {
        const int size = std::atoi(env);
        if (size > 0)
            return size;
    }
    return 1327;
}

/** Worker-thread count used by every batch submission. */
inline int &
jobCount()
{
    static int jobs = ThreadPool::defaultThreads();
    return jobs;
}

/** Master seed of the shared suite (settable before first use). */
inline uint64_t &
suiteSeed()
{
    static uint64_t seed = defaultSuiteSeed;
    return seed;
}

/**
 * Parses the common experiment flags (--jobs N, --seed S). Exits
 * with a usage message on anything unrecognized, so every driver
 * shares one flag surface. Call before the first sharedSuite() use.
 */
inline void
parseBatchArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--jobs" && value) {
            const int jobs = std::atoi(value);
            if (jobs > 0)
                jobCount() = jobs;
            ++i;
        } else if (arg == "--seed" && value) {
            suiteSeed() = std::strtoull(value, nullptr, 0);
            ++i;
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--jobs N] [--seed S]\n";
            std::exit(2);
        }
    }
}

inline const std::vector<Dfg> &
sharedSuite()
{
    static const std::vector<Dfg> suite =
        buildSuite(suiteSize(), suiteSeed());
    return suite;
}

/** Baseline IIs, cached per unified machine identity. */
inline const std::vector<int> &
baselineFor(const MachineDesc &clustered, const CompileOptions &options)
{
    static std::map<std::string, std::vector<int>> cache;
    const MachineDesc unified = clustered.unifiedEquivalent();
    const std::string key =
        unified.name + "/" +
        (options.scheduler == SchedulerKind::Swing ? "sms" : "ims");
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key, unifiedBaseline(sharedSuite(), unified,
                                               options, jobCount()))
                 .first;
    }
    return it->second;
}

/** Runs one series of a figure over the shared suite. */
inline DeviationSeries
runSeries(const std::string &label, const MachineDesc &machine,
          const CompileOptions &options = {})
{
    std::cerr << "running " << label << " (" << sharedSuite().size()
              << " loops on " << machine.name << ", " << jobCount()
              << " jobs)..." << std::endl;
    return runClusteredSeries(sharedSuite(), machine,
                              baselineFor(machine, options), options,
                              label, jobCount());
}

inline void
printFigure(const std::string &title,
            const std::vector<DeviationSeries> &series)
{
    std::cout << renderDeviationFigure(title, series) << std::endl;
    // Set CAMS_CSV=1 to additionally dump machine-readable data for
    // external plotting.
    if (std::getenv("CAMS_CSV"))
        std::cout << renderDeviationCsv(series) << std::endl;
}

} // namespace benchutil
} // namespace cams

#endif // CAMS_BENCH_COMMON_HH
