/**
 * @file
 * Shared plumbing for the experiment binaries: the cached loop suite,
 * per-unified-machine baseline caching, figure printing, and the
 * common command-line surface.
 *
 * Every figure/table binary runs the full 1327-loop suite by default
 * and submits its compiles through the parallel batch engine. Knobs:
 *
 *   --jobs N          worker threads (default: CAMS_JOBS env or the
 *                     hardware concurrency); results are identical
 *                     for every value
 *   --seed S          master seed of the synthetic suite (default:
 *                     the published experiments' seed)
 *   CAMS_SUITE_SIZE   subsample to the first n loops for a quick look
 */

#ifndef CAMS_BENCH_COMMON_HH
#define CAMS_BENCH_COMMON_HH

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "pipeline/batch.hh"
#include "pipeline/cache/compile_cache.hh"
#include "pipeline/driver.hh"
#include "report/deviation.hh"
#include "report/table.hh"
#include "support/metrics.hh"
#include "support/threadpool.hh"
#include "support/trace.hh"
#include "workload/suite.hh"

namespace cams
{
namespace benchutil
{

inline int
suiteSize()
{
    if (const char *env = std::getenv("CAMS_SUITE_SIZE")) {
        const int size = std::atoi(env);
        if (size > 0)
            return size;
    }
    return 1327;
}

/** Worker-thread count used by every batch submission. */
inline int &
jobCount()
{
    static int jobs = ThreadPool::defaultThreads();
    return jobs;
}

/** Master seed of the shared suite (settable before first use). */
inline uint64_t &
suiteSeed()
{
    static uint64_t seed = defaultSuiteSeed;
    return seed;
}

/** Trace output path; empty = tracing off. */
inline std::string &
tracePath()
{
    static std::string path;
    return path;
}

/** Metrics output path; empty = no metrics file. */
inline std::string &
metricsPath()
{
    static std::string path;
    return path;
}

/** Level of the shared sink (set before the first batch). */
inline TraceLevel &
traceLevel()
{
    static TraceLevel level = TraceLevel::Phase;
    return level;
}

/** The binary-wide sink; null until --trace asked for one. */
inline TraceSink *
traceSink()
{
    static std::unique_ptr<TraceSink> sink;
    if (!sink && !tracePath().empty())
        sink = std::make_unique<TraceSink>(traceLevel());
    return sink.get();
}

/** Registry aggregating every batch this binary runs. */
inline MetricsRegistry &
sharedRegistry()
{
    static MetricsRegistry registry;
    return registry;
}

/** Backend every batch compiles with (--backend). */
inline CompileBackend &
backendChoice()
{
    static CompileBackend backend = CompileBackend::Heuristic;
    return backend;
}

/** Compile cache directory; empty = caching off. */
inline std::string &
cacheDir()
{
    static std::string dir;
    return dir;
}

/** Cache mode applied when cacheDir() is set. */
inline CacheMode &
cacheMode()
{
    static CacheMode mode = CacheMode::ReadWrite;
    return mode;
}

/** The binary-wide compile cache; null until --cache-dir asked. */
inline CompileCache *
compileCache()
{
    static std::unique_ptr<CompileCache> cache;
    static bool tried = false;
    if (!tried && !cacheDir().empty() &&
        cacheMode() != CacheMode::Off) {
        tried = true;
        cache = std::make_unique<CompileCache>(cacheDir(), cacheMode());
        if (!cache->enabled()) {
            std::cerr << "warning: " << cache->openError()
                      << "; continuing uncached\n";
            cache.reset();
        }
    }
    return cache.get();
}

/**
 * Parses the common experiment flags (--jobs N, --seed S, --trace
 * FILE, --trace-level L, --metrics FILE). Exits with a usage message
 * on anything unrecognized, so every driver shares one flag surface.
 * Call before the first sharedSuite() use.
 */
inline void
parseBatchArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--jobs" && value) {
            const int jobs = std::atoi(value);
            if (jobs > 0)
                jobCount() = jobs;
            ++i;
        } else if (arg == "--seed" && value) {
            suiteSeed() = std::strtoull(value, nullptr, 0);
            ++i;
        } else if (arg == "--trace" && value) {
            tracePath() = value;
            ++i;
        } else if (arg == "--trace-level" && value) {
            if (!parseTraceLevel(value, traceLevel())) {
                std::cerr << "unknown trace level: " << value << "\n";
                std::exit(2);
            }
            ++i;
        } else if (arg == "--metrics" && value) {
            metricsPath() = value;
            ++i;
        } else if (arg == "--backend" && value) {
            if (!parseCompileBackend(value, backendChoice())) {
                std::cerr << "unknown backend: " << value << "\n";
                std::exit(2);
            }
            ++i;
        } else if (arg == "--cache-dir" && value) {
            cacheDir() = value;
            ++i;
        } else if (arg == "--cache" && value) {
            if (!parseCacheMode(value, cacheMode())) {
                std::cerr << "unknown cache mode: " << value << "\n";
                std::exit(2);
            }
            ++i;
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--jobs N] [--seed S] [--trace FILE]"
                         " [--trace-level L] [--metrics FILE]"
                         " [--backend heuristic|exact|race]"
                         " [--cache-dir DIR] [--cache off|ro|rw]\n";
            std::exit(2);
        }
    }
}

/** Attaches the shared sink and compile cache to a batch's options. */
inline CompileOptions
withTrace(CompileOptions options)
{
    options.trace.sink = traceSink();
    options.cache = compileCache();
    options.backend = backendChoice();
    return options;
}

inline const std::vector<Dfg> &
sharedSuite()
{
    static const std::vector<Dfg> suite =
        buildSuite(suiteSize(), suiteSeed());
    return suite;
}

/** Baseline IIs, cached per unified machine identity. */
inline const std::vector<int> &
baselineFor(const MachineDesc &clustered, const CompileOptions &options)
{
    static std::map<std::string, std::vector<int>> cache;
    const MachineDesc unified = clustered.unifiedEquivalent();
    const std::string key =
        unified.name + "/" +
        (options.scheduler == SchedulerKind::Swing ? "sms" : "ims");
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key, unifiedBaseline(
                                   sharedSuite(), unified,
                                   withTrace(options), jobCount(),
                                   &sharedRegistry()))
                 .first;
    }
    return it->second;
}

/** Runs one series of a figure over the shared suite. */
inline DeviationSeries
runSeries(const std::string &label, const MachineDesc &machine,
          const CompileOptions &options = {})
{
    std::cerr << "running " << label << " (" << sharedSuite().size()
              << " loops on " << machine.name << ", " << jobCount()
              << " jobs)..." << std::endl;
    return runClusteredSeries(sharedSuite(), machine,
                              baselineFor(machine, options),
                              withTrace(options), label, jobCount(),
                              &sharedRegistry());
}

/**
 * Writes the trace and metrics files when asked for. Called after
 * every figure; the sink and registry are cumulative, so the last
 * write of a multi-figure binary carries everything.
 */
inline void
writeObservability()
{
    if (TraceSink *sink = traceSink()) {
        if (!sink->writeFile(tracePath()))
            std::cerr << "cannot write " << tracePath() << "\n";
        else
            std::cerr << tracePath() << " written\n";
    }
    if (!metricsPath().empty()) {
        if (CompileCache *cache = compileCache())
            cache->publish(sharedRegistry());
        std::ofstream out(metricsPath());
        if (!out)
            std::cerr << "cannot write " << metricsPath() << "\n";
        else
            out << sharedRegistry().toJson() << "\n";
    }
}

inline void
printFigure(const std::string &title,
            const std::vector<DeviationSeries> &series)
{
    std::cout << renderDeviationFigure(title, series) << std::endl;
    // Set CAMS_CSV=1 to additionally dump machine-readable data for
    // external plotting.
    if (std::getenv("CAMS_CSV"))
        std::cout << renderDeviationCsv(series) << std::endl;
    writeObservability();
}

} // namespace benchutil
} // namespace cams

#endif // CAMS_BENCH_COMMON_HH
