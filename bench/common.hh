/**
 * @file
 * Shared plumbing for the experiment binaries: the cached loop suite,
 * per-unified-machine baseline caching, and figure printing.
 *
 * Every figure/table binary runs the full 1327-loop suite by default;
 * set CAMS_SUITE_SIZE=<n> to subsample for a quick look (results are
 * then computed over the first n loops).
 */

#ifndef CAMS_BENCH_COMMON_HH
#define CAMS_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "pipeline/driver.hh"
#include "report/deviation.hh"
#include "report/table.hh"
#include "workload/suite.hh"

namespace cams
{
namespace benchutil
{

inline int
suiteSize()
{
    if (const char *env = std::getenv("CAMS_SUITE_SIZE")) {
        const int size = std::atoi(env);
        if (size > 0)
            return size;
    }
    return 1327;
}

inline const std::vector<Dfg> &
sharedSuite()
{
    static const std::vector<Dfg> suite = buildSuite(suiteSize());
    return suite;
}

/** Baseline IIs, cached per unified machine identity. */
inline const std::vector<int> &
baselineFor(const MachineDesc &clustered, const CompileOptions &options)
{
    static std::map<std::string, std::vector<int>> cache;
    const MachineDesc unified = clustered.unifiedEquivalent();
    const std::string key =
        unified.name + "/" +
        (options.scheduler == SchedulerKind::Swing ? "sms" : "ims");
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key, unifiedBaseline(sharedSuite(), unified,
                                               options))
                 .first;
    }
    return it->second;
}

/** Runs one series of a figure over the shared suite. */
inline DeviationSeries
runSeries(const std::string &label, const MachineDesc &machine,
          const CompileOptions &options = {})
{
    std::cerr << "running " << label << " (" << sharedSuite().size()
              << " loops on " << machine.name << ")..." << std::endl;
    return runClusteredSeries(sharedSuite(), machine,
                              baselineFor(machine, options), options,
                              label);
}

inline void
printFigure(const std::string &title,
            const std::vector<DeviationSeries> &series)
{
    std::cout << renderDeviationFigure(title, series) << std::endl;
    // Set CAMS_CSV=1 to additionally dump machine-readable data for
    // external plotting.
    if (std::getenv("CAMS_CSV"))
        std::cout << renderDeviationCsv(series) << std::endl;
}

} // namespace benchutil
} // namespace cams

#endif // CAMS_BENCH_COMMON_HH
