/**
 * @file
 * Reproduces Figure 19: bus sweep on the four-cluster machine with
 * four fully-specialized units per cluster, 2 ports. Paper shape:
 * ~94% of loops match the unified II at 4 buses.
 */

#include "bench/common.hh"
#include "machine/configs.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    std::vector<DeviationSeries> series;
    for (int buses : {2, 4, 8}) {
        series.push_back(benchutil::runSeries(
            std::to_string(buses) + " buses",
            busedFsMachine(4, buses, 2)));
    }
    benchutil::printFigure(
        "Figure 19: varying buses, 4 clusters x 4 FS, 2 ports", series);
    return 0;
}
