/**
 * @file
 * Reproduces Table 3: for 2/4/6/8 clusters of 4 GP units at the
 * paper's knee bus/port counts, the percentage of loops whose II
 * matches the equally wide unified machine.
 *
 * Paper: 2c/2b/1p 99.7%; 4c/4b/2p 97.5%; 6c/6b/3p 96.5%;
 * 8c/7b/3p 99.5%.
 */

#include <iostream>

#include "bench/common.hh"
#include "machine/configs.hh"
#include "support/str.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    struct Config
    {
        int clusters;
        int buses;
        int ports;
        const char *paper;
    };
    const Config configs[] = {
        {2, 2, 1, "99.7"},
        {4, 4, 2, "97.5"},
        {6, 6, 3, "96.5"},
        {8, 7, 3, "99.5"},
    };

    TextTable table({"clusters", "buses", "ports", "% of unified",
                     "paper %", "copies", "fail"});
    for (const Config &config : configs) {
        const MachineDesc machine =
            busedGpMachine(config.clusters, config.buses, config.ports);
        const DeviationSeries series =
            benchutil::runSeries(machine.name, machine);
        table.addRow({std::to_string(config.clusters),
                      std::to_string(config.buses),
                      std::to_string(config.ports),
                      formatFixed(series.percentAt(0), 1), config.paper,
                      std::to_string(series.totalCopies),
                      std::to_string(series.failures)});
    }
    std::cout << "== Table 3: bus/port resource comparisons ==\n"
              << table.render();
    return 0;
}
