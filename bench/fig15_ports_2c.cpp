/**
 * @file
 * Reproduces Figure 15: port-count sweep {1, 2} on the two-cluster
 * GP machine with 2 buses. Paper shape: one port is enough; the
 * second improves only ~0.1% of loops.
 */

#include "bench/common.hh"
#include "machine/configs.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    std::vector<DeviationSeries> series;
    for (int ports : {1, 2}) {
        series.push_back(benchutil::runSeries(
            std::to_string(ports) + " port(s)",
            busedGpMachine(2, 2, ports)));
    }
    benchutil::printFigure(
        "Figure 15: varying ports, 2 clusters x 4 GP, 2 buses", series);
    return 0;
}
