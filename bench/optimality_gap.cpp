/**
 * @file
 * Optimality-gap audit of the heuristic cascade against the exact
 * SAT backend: races every suite loop on the 2-cluster and 4-cluster
 * reference machines and writes BENCH_exact_gap.json for the CI gate
 * (tools/check_exact_gap.py).
 *
 * Per machine the race backend produces, for every loop, one of
 *
 *  - tightened: the exact arm found a schedule at a lower II than the
 *    heuristic; the gap (heuristic II - exact II) is the measured
 *    suboptimality of the cascade on that loop.
 *  - certified: UNSAT certificates cover [MII, heuristic II), so the
 *    heuristic answer is provably optimal (gap 0 by proof).
 *  - timeout / unsupported: no claim either way; counted so the gate
 *    can bound the fraction of the suite the audit actually covers.
 *
 * Two independent cross-checks back every claim:
 *
 *  1. Every successful result -- tightened or not -- is re-run
 *     through AnnotatedLoop::validate and the independent verifier
 *     here, outside the driver. A reject is an optimality_violation.
 *  2. Every UNSAT certificate is spot-checked by re-running the
 *     heuristic cascade (assignment + scheduler + verifier) pinned at
 *     heuristic II - 1. The heuristic finding a valid schedule at an
 *     II the solver certified infeasible is a violation; the
 *     heuristic failing is the expected agreement.
 *
 * The gate requires violations == 0 (an exact answer may never be
 * worse or wrong) and bounds the timeout fraction.
 */

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "machine/configs.hh"
#include "sched/verifier.hh"
#include "support/str.hh"

namespace
{

using namespace cams;

/** Audit of one machine's race over the suite. */
struct MachineAudit
{
    std::string machine;
    int jobs = 0;
    int succeeded = 0;
    int tightened = 0;
    int certified = 0;
    int timeouts = 0;
    int unsupported = 0;
    int spotChecks = 0;
    int violations = 0;
    int maxGap = 0;
    long conflicts = 0;
    double exactMs = 0.0;
    std::map<int, int> gapHistogram;
    std::vector<std::string> violationDetails;
};

/**
 * Heuristic single-II probe: assignment + scheduling + verification
 * pinned at exactly @p ii, the same pieces the driver's cascade runs
 * per attempt. Returns true only for a verifier-approved schedule.
 */
bool
heuristicFeasibleAt(const Dfg &graph, const ResourceModel &model,
                    int ii, const CompileOptions &options)
{
    const ClusterAssigner assigner(model, options.assign);
    AssignResult assignment = assigner.run(graph, ii);
    if (!assignment.success)
        return false;
    const auto scheduler = makeScheduler(options.scheduler);
    Schedule schedule;
    if (!scheduler->schedule(assignment.loop, model, ii, schedule))
        return false;
    std::string why;
    return verifySchedule(assignment.loop, model, schedule, &why);
}

MachineAudit
auditMachine(const MachineDesc &machine)
{
    const std::vector<Dfg> &suite = benchutil::sharedSuite();
    CompileOptions options = benchutil::withTrace({});
    options.backend = CompileBackend::Race;

    std::cerr << "racing " << suite.size() << " loops on "
              << machine.name << " (" << benchutil::jobCount()
              << " jobs)..." << std::endl;
    const BatchOutcome outcome = BatchRunner::run(
        clusteredJobs(suite, machine, options), benchutil::jobCount(),
        0.0, &benchutil::sharedRegistry());

    MachineAudit audit;
    audit.machine = machine.name;
    audit.jobs = static_cast<int>(suite.size());
    const ResourceModel model(machine);

    for (size_t i = 0; i < suite.size(); ++i) {
        const CompileResult &result = outcome.results[i];
        const std::string &name = suite[i].name();
        if (!result.success)
            continue;
        ++audit.succeeded;
        audit.conflicts += result.exact.conflicts;
        audit.exactMs += result.exact.solveMs;

        switch (result.exact.outcome) {
          case ExactOutcome::Timeout:
            ++audit.timeouts;
            break;
          case ExactOutcome::Unsupported:
            ++audit.unsupported;
            break;
          default:
            break;
        }

        // Cross-check 1: re-verify every schedule the race produced,
        // independently of the driver's own verify pass.
        std::string why;
        if (!result.loop.validate(machine, &why) ||
            !verifySchedule(result.loop, model, result.schedule,
                            &why)) {
            ++audit.violations;
            audit.violationDetails.push_back(
                name + ": schedule re-verification failed: " + why);
            continue;
        }

        if (result.exact.tightened) {
            const int gap = result.exact.heuristicIi - result.ii;
            ++audit.tightened;
            if (gap <= 0) {
                // "Tightened" to an equal-or-worse II is a protocol
                // violation, not a gap.
                ++audit.violations;
                audit.violationDetails.push_back(
                    name + ": tightened gap " + std::to_string(gap) +
                    " is not positive");
                continue;
            }
            ++audit.gapHistogram[gap];
            if (gap > audit.maxGap)
                audit.maxGap = gap;
        } else if (result.exact.certified) {
            ++audit.certified;
            ++audit.gapHistogram[0];
            // Cross-check 2: the certificate says II - 1 (and below)
            // is infeasible. The heuristic agreeing -- failing at
            // II - 1 -- costs one probe; it succeeding disproves the
            // certificate.
            if (result.ii > result.mii.mii) {
                ++audit.spotChecks;
                if (heuristicFeasibleAt(suite[i], model, result.ii - 1,
                                        options)) {
                    ++audit.violations;
                    audit.violationDetails.push_back(
                        name + ": heuristic schedules II " +
                        std::to_string(result.ii - 1) +
                        " but the exact arm certified it UNSAT");
                }
            }
        }
    }
    return audit;
}

std::string
auditJson(const MachineAudit &audit)
{
    std::ostringstream os;
    const double timeoutFraction =
        audit.jobs > 0
            ? static_cast<double>(audit.timeouts) / audit.jobs
            : 0.0;
    os << "{\"machine\":\"" << audit.machine << "\","
       << "\"jobs\":" << audit.jobs << ","
       << "\"succeeded\":" << audit.succeeded << ","
       << "\"tightened\":" << audit.tightened << ","
       << "\"certified\":" << audit.certified << ","
       << "\"timeouts\":" << audit.timeouts << ","
       << "\"unsupported\":" << audit.unsupported << ","
       << "\"spot_checks\":" << audit.spotChecks << ","
       << "\"violations\":" << audit.violations << ","
       << "\"max_gap\":" << audit.maxGap << ","
       << "\"timeout_fraction\":" << formatFixed(timeoutFraction, 4)
       << ","
       << "\"exact_conflicts\":" << audit.conflicts << ","
       << "\"exact_ms\":" << formatFixed(audit.exactMs, 3) << ","
       << "\"gap_histogram\":{";
    bool first = true;
    for (const auto &[gap, count] : audit.gapHistogram) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << gap << "\":" << count;
    }
    os << "},\"violation_details\":[";
    first = true;
    for (const std::string &detail : audit.violationDetails) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << detail << "\"";
    }
    os << "]}";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);

    const std::vector<MachineDesc> machines = {
        busedGpMachine(2, 2, 1),
        busedGpMachine(4, 4, 2),
    };

    std::vector<MachineAudit> audits;
    int violations = 0;
    int timeouts = 0;
    int jobs = 0;
    for (const MachineDesc &machine : machines) {
        audits.push_back(auditMachine(machine));
        violations += audits.back().violations;
        timeouts += audits.back().timeouts;
        jobs += audits.back().jobs;
    }

    const double timeoutFraction =
        jobs > 0 ? static_cast<double>(timeouts) / jobs : 0.0;
    std::ofstream json("BENCH_exact_gap.json");
    json << "{\"bench\":\"exact_gap\","
         << "\"loops\":" << benchutil::sharedSuite().size() << ","
         << "\"violations\":" << violations << ","
         << "\"timeout_fraction\":" << formatFixed(timeoutFraction, 4)
         << ",\"machines\":[";
    for (size_t i = 0; i < audits.size(); ++i) {
        if (i)
            json << ",";
        json << auditJson(audits[i]);
    }
    json << "]}\n";

    for (const MachineAudit &audit : audits) {
        std::cout << audit.machine << ": " << audit.succeeded << "/"
                  << audit.jobs << " compiled, " << audit.tightened
                  << " tightened (max gap " << audit.maxGap << "), "
                  << audit.certified << " certified optimal, "
                  << audit.timeouts << " timeouts, "
                  << audit.unsupported << " unsupported, "
                  << audit.spotChecks << " UNSAT spot-checks, "
                  << audit.violations << " violations\n";
        for (const std::string &detail : audit.violationDetails)
            std::cout << "  VIOLATION: " << detail << "\n";
    }
    std::cout << "BENCH_exact_gap.json written\n";
    benchutil::writeObservability();
    return violations == 0 ? 0 : 1;
}
