/**
 * @file
 * Ablation study of the assignment algorithm's ingredients (beyond
 * the paper's coarse four variants): starting from the full
 * Heuristic-Iterative configuration, each row disables exactly one
 * mechanism -- SCC-first ordering with swing traversal, the SCC
 * cluster-affinity selection, the PCR/MRC copy-space prediction, the
 * within-II restarts -- on the two-cluster machine of Figure 12.
 */

#include "bench/common.hh"
#include "machine/configs.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    const MachineDesc machine = busedGpMachine(2, 2, 1);

    struct Row
    {
        const char *label;
        void (*tweak)(AssignOptions &);
    };
    const Row rows[] = {
        {"full algorithm", [](AssignOptions &) {}},
        {"- swing order (id order)",
         [](AssignOptions &o) { o.useSwingOrder = false; }},
        {"- scc affinity",
         [](AssignOptions &o) { o.useSccAffinity = false; }},
        {"- pcr prediction",
         [](AssignOptions &o) { o.usePcrPrediction = false; }},
        {"- restarts (1 try/II)",
         [](AssignOptions &o) { o.restartsPerIi = 1; }},
        {"- iteration",
         [](AssignOptions &o) { o.iterative = false; }},
        {"- everything (simple)",
         [](AssignOptions &o) {
             o.iterative = false;
             o.fullHeuristic = false;
         }},
    };

    std::vector<DeviationSeries> series;
    for (const Row &row : rows) {
        CompileOptions options;
        row.tweak(options.assign);
        series.push_back(
            benchutil::runSeries(row.label, machine, options));
    }
    benchutil::printFigure(
        "Ablation: assignment ingredients on 2 clusters x 4 GP, "
        "2 buses, 1 port",
        series);
    return 0;
}
