/**
 * @file
 * Register-pressure ablation: across the suite on the two-cluster
 * machine, measures MaxLive, the MVE factor and allocated rotating
 * registers with and without the stage-scheduling post-pass -- the
 * companion machinery the paper's Section 1.2 describes around any
 * modulo scheduler.
 */

#include <iostream>

#include "bench/common.hh"
#include "machine/configs.hh"
#include "regalloc/regalloc.hh"
#include "sched/regmetrics.hh"
#include "sched/stage.hh"
#include "support/stats.hh"
#include "support/str.hh"

int
main(int argc, char **argv)
{
    using namespace cams;
    benchutil::parseBatchArgs(argc, argv);
    const MachineDesc machine = busedGpMachine(2, 2, 1);

    RunningStat live_plain;
    RunningStat live_staged;
    RunningStat regs_plain;
    RunningStat regs_staged;
    RunningStat mve_plain;
    RunningStat mve_staged;
    long improved = 0;
    long total = 0;

    const BatchOutcome batch = BatchRunner::run(
        clusteredJobs(benchutil::sharedSuite(), machine),
        benchutil::jobCount());
    for (const CompileResult &result : batch.results) {
        if (!result.success || result.degraded != DegradeLevel::None)
            continue;
        ++total;

        const RegMetrics plain =
            computeRegMetrics(result.loop, result.schedule);
        const RegisterAllocation alloc_plain = allocateRegisters(
            result.loop, result.schedule, machine);

        const StageScheduleResult staged =
            stageSchedule(result.loop, result.schedule);
        const RegMetrics after =
            computeRegMetrics(result.loop, staged.schedule);
        const RegisterAllocation alloc_staged =
            allocateRegisters(result.loop, staged.schedule, machine);

        auto totalRegs = [](const RegisterAllocation &alloc) {
            int total_regs = 0;
            for (int regs : alloc.registersPerFile)
                total_regs += regs;
            return total_regs;
        };

        live_plain.add(plain.maxLive);
        live_staged.add(after.maxLive);
        regs_plain.add(totalRegs(alloc_plain));
        regs_staged.add(totalRegs(alloc_staged));
        mve_plain.add(plain.mveFactor);
        mve_staged.add(after.mveFactor);
        if (after.maxLive < plain.maxLive)
            ++improved;
    }

    std::cout << "== Ablation: stage scheduling vs. register pressure "
                 "(2c GP machine, "
              << total << " loops) ==\n";
    TextTable table({"metric", "modulo schedule", "+ stage scheduling"});
    table.addRow({"avg MaxLive", formatFixed(live_plain.mean(), 2),
                  formatFixed(live_staged.mean(), 2)});
    table.addRow({"max MaxLive", formatFixed(live_plain.max(), 0),
                  formatFixed(live_staged.max(), 0)});
    table.addRow({"avg rotating registers",
                  formatFixed(regs_plain.mean(), 2),
                  formatFixed(regs_staged.mean(), 2)});
    table.addRow({"avg MVE factor", formatFixed(mve_plain.mean(), 2),
                  formatFixed(mve_staged.mean(), 2)});
    std::cout << table.render();
    std::cout << "loops with reduced MaxLive: " << improved << " of "
              << total << "\n";
    return 0;
}
