/**
 * @file
 * Dynamic validation demo: compile a loop for the grid machine, then
 * *execute* the software pipeline cycle by cycle on the clustered
 * VLIW simulator and check that every value matches a sequential run
 * of the original loop -- multi-hop copy chains, overlapping
 * iterations and all.
 */

#include <iostream>

#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "sim/compare.hh"
#include "sim/vliw.hh"
#include "workload/kernels.hh"

int
main()
{
    using namespace cams;

    const MachineDesc grid = gridMachine();

    for (const Dfg &kernel : allKernels()) {
        const CompileResult result = compileClustered(kernel, grid);
        if (!result.success) {
            std::cout << kernel.name() << ": compilation failed\n";
            continue;
        }

        const int iterations = 12;
        const EquivalenceReport report = checkEquivalence(
            kernel, result.loop, result.schedule, grid, iterations);

        std::cout << kernel.name() << ": II=" << result.ii
                  << " stages=" << result.schedule.stageCount()
                  << " copies=" << result.copies << " | " << iterations
                  << " iterations, " << report.comparisons
                  << " values compared, " << report.transfers
                  << " inter-cluster transfers -> "
                  << (report.equivalent ? "EQUIVALENT" : "MISMATCH")
                  << "\n";
        for (const std::string &issue : report.mismatches)
            std::cout << "    " << issue << "\n";
    }
    return 0;
}
