/**
 * @file
 * Compiles the bundled Livermore-style kernels on the paper's machine
 * zoo and prints an II comparison table: unified vs 2/4-cluster GP,
 * 2/4-cluster FS and the 4-cluster grid, with copy counts and
 * register pressure. The motivating scenario of the paper's intro:
 * how much throughput does clustering cost on real loop kernels?
 */

#include <iostream>

#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "report/table.hh"
#include "sched/regmetrics.hh"
#include "workload/kernels.hh"

int
main()
{
    using namespace cams;

    const std::vector<MachineDesc> machines = {
        busedGpMachine(2, 2, 1), busedGpMachine(4, 4, 2),
        busedFsMachine(2, 2, 1), busedFsMachine(4, 4, 2),
        gridMachine(),
    };

    std::vector<std::string> headers = {"kernel", "unified(8gp) II"};
    for (const MachineDesc &machine : machines)
        headers.push_back(machine.name);
    headers.push_back("MaxLive@2c");
    TextTable table(headers);

    for (const Dfg &kernel : allKernels()) {
        std::vector<std::string> row = {kernel.name()};

        // Baseline on the widest unified equivalent (8 GP units).
        const MachineDesc unified =
            machines.front().unifiedEquivalent();
        const CompileResult base = compileUnified(kernel, unified);
        row.push_back(base.success ? std::to_string(base.ii) : "-");

        std::string pressure = "-";
        for (const MachineDesc &machine : machines) {
            const CompileResult result =
                compileClustered(kernel, machine);
            if (!result.success) {
                row.push_back("fail");
                continue;
            }
            std::string cell = std::to_string(result.ii);
            if (result.copies > 0)
                cell += "(+" + std::to_string(result.copies) + "cp)";
            row.push_back(cell);
            if (&machine == &machines.front()) {
                const RegMetrics regs =
                    computeRegMetrics(result.loop, result.schedule);
                pressure = std::to_string(regs.maxLive);
            }
        }
        row.push_back(pressure);
        table.addRow(row);
    }

    std::cout << "II per kernel and machine "
                 "(cells: II(+copies)); unified baseline is the "
                 "equally wide single-cluster machine\n\n";
    std::cout << table.render();
    return 0;
}
