/**
 * @file
 * Building a custom machine: a 2x2 point-to-point grid, plus a
 * user-defined ring machine, compiled against a text-format loop.
 * Demonstrates the machine-description API, copy routing over links
 * (multi-hop chains to non-neighbors), and the text loop format.
 */

#include <iostream>

#include "graph/textio.hh"
#include "machine/configs.hh"
#include "pipeline/driver.hh"

int
main()
{
    using namespace cams;

    // A loop in the text format (this could come from a file).
    const std::string source = R"(
        loop smooth
        # x[i] = (a[i-1] + a[i] + a[i+1]) / 3 with a running sum
        node ld0 ld
        node ld1 ld
        node ld2 ld
        node add0 fadd
        node add1 fadd
        node scale fmul
        node acc fadd
        node st st
        node cnt add
        node br br
        edge ld0 add0
        edge ld1 add0
        edge add0 add1
        edge ld2 add1
        edge add1 scale
        edge scale st
        edge scale acc
        edge acc acc dist=1
        edge cnt br
    )";

    Dfg loop;
    std::string error;
    if (!parseDfg(source, loop, error)) {
        std::cerr << "parse error: " << error << "\n";
        return 1;
    }

    // The paper's grid (Figure 4): 4 clusters of 1 mem + 1 int + 1 FP
    // unit, links along the square's sides only.
    const MachineDesc grid = gridMachine();

    // A custom 4-cluster ring: same clusters, different topology.
    MachineDesc ring = grid;
    ring.name = "4c-ring-2p";
    ring.links = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
    ring.validate();

    const CompileResult base =
        compileUnified(loop, grid.unifiedEquivalent());
    std::cout << "unified (4m/4i/4f): II = " << base.ii << "\n";

    for (const MachineDesc &machine : {grid, ring}) {
        const CompileResult result = compileClustered(loop, machine);
        std::cout << machine.name << ": ";
        if (!result.success) {
            std::cout << "failed\n";
            continue;
        }
        std::cout << "II = " << result.ii
                  << ", copies = " << result.copies
                  << " (deviation " << result.ii - base.ii << ")\n";
        // Multi-hop chains show up as copies feeding copies.
        for (NodeId v = result.loop.numOriginalNodes;
             v < result.loop.graph.numNodes(); ++v) {
            const auto &place = result.loop.placement[v];
            std::cout << "    " << result.loop.graph.node(v).name
                      << ": C" << place.cluster << " -> C"
                      << place.copyDsts[0] << "\n";
        }
    }
    return 0;
}
