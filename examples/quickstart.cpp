/**
 * @file
 * Quickstart: build a small loop, pick a clustered machine, compile
 * it (cluster assignment + modulo scheduling), and inspect the
 * result. This is the five-minute tour of the public API.
 */

#include <iostream>

#include "graph/builder.hh"
#include "graph/dot.hh"
#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "sched/regmetrics.hh"

int
main()
{
    using namespace cams;

    // 1. Describe the loop body as a data-flow graph. Latencies
    //    default to the paper's Table 2 (loads 2, FP multiply 3, ...).
    //    The fmul/fadd pair closed by a distance-1 loop-carried edge
    //    is a recurrence: s += a[i] * b[i].
    Dfg loop = DfgBuilder("dot_product")
                   .op("ld_a", Opcode::Load)
                   .op("ld_b", Opcode::Load)
                   .op("mul", Opcode::FpMult)
                   .op("acc", Opcode::FpAdd)
                   .op("cnt", Opcode::IntAlu)
                   .op("br", Opcode::Branch)
                   .flow("ld_a", "mul")
                   .flow("ld_b", "mul")
                   .flow("mul", "acc")
                   .carried("acc", "acc", 1)
                   .flow("cnt", "br")
                   .build();

    // 2. Pick a machine: two clusters of four general-purpose units,
    //    two broadcast buses, one bus read/write port per cluster.
    const MachineDesc machine = busedGpMachine(2, 2, 1);

    // 3. Compile. The driver computes MII, assigns every operation to
    //    a cluster (inserting explicit copy operations where values
    //    cross clusters), and modulo-schedules the annotated loop.
    const CompileResult result = compileClustered(loop, machine);
    if (!result.success) {
        std::cerr << "compilation failed\n";
        return 1;
    }

    std::cout << "machine:        " << machine.name << "\n";
    std::cout << "RecMII/ResMII:  " << result.mii.recMii << "/"
              << result.mii.resMii << "\n";
    std::cout << "achieved II:    " << result.ii << "\n";
    std::cout << "copies added:   " << result.copies << "\n";

    // 4. Compare against the equally wide unified machine -- the
    //    paper's quality metric.
    const CompileResult baseline =
        compileUnified(loop, machine.unifiedEquivalent());
    std::cout << "unified II:     " << baseline.ii << "\n";
    std::cout << "deviation:      " << result.ii - baseline.ii
              << " (0 = all communication hidden)\n\n";

    // 5. Inspect the kernel and the register pressure.
    std::cout << result.schedule.dump(result.loop);
    const RegMetrics regs =
        computeRegMetrics(result.loop, result.schedule);
    std::cout << "MaxLive=" << regs.maxLive
              << " MVE factor=" << regs.mveFactor << "\n\n";

    // 6. Cluster placements (also available as DOT for graphviz).
    for (NodeId v = 0; v < result.loop.graph.numNodes(); ++v) {
        std::cout << "  " << result.loop.graph.node(v).name << " -> C"
                  << result.loop.placement[v].cluster << "\n";
    }
    return 0;
}
