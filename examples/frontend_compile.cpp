/**
 * @file
 * The frontend in action: write loop bodies as C-like source, compile
 * them for a clustered machine, and inspect what the whole toolchain
 * produced -- the derived data-flow graph, the recurrences the
 * frontend recognized (store-to-load forwarding, scalar
 * accumulation), the achieved II and the register allocation.
 */

#include <iostream>

#include "frontend/parser.hh"
#include "graph/recmii.hh"
#include "graph/scc.hh"
#include "graph/textio.hh"
#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "regalloc/regalloc.hh"

int
main()
{
    using namespace cams;

    const char *sources[] = {
        // Livermore kernel 5: the classic forwarded recurrence.
        "loop tridiag { x[i] = z[i] * (y[i] - x[i-1]); }",
        // Horner-style polynomial with invariant coefficients.
        "loop horner { y[i] = ((c3 * x[i] + c2) * x[i] + c1) * x[i] "
        "+ c0; }",
        // Variance pass: accumulation of a squared difference.
        "loop variance { s += (x[i] - m) * (x[i] - m); }",
        // Integer hash mixing with a carried state.
        "loop hash { k = (k << 5) + k + m[i]; }",
    };

    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const MachineDesc unified = machine.unifiedEquivalent();

    for (const char *source : sources) {
        Dfg loop;
        std::string error;
        if (!parseLoopSource(source, loop, error)) {
            std::cerr << "parse error: " << error << "\n";
            return 1;
        }

        std::cout << "== " << loop.name() << " ==\n";
        std::cout << "source:   " << source << "\n";
        std::cout << "graph:    " << loop.numNodes() << " ops, "
                  << loop.numEdges() << " deps, "
                  << findSccs(loop).numNonTrivial()
                  << " recurrence(s), RecMII " << recMii(loop) << "\n";

        const CompileResult base = compileUnified(loop, unified);
        const CompileResult result = compileClustered(loop, machine);
        if (!base.success || !result.success) {
            std::cout << "compilation failed\n\n";
            continue;
        }
        const RegisterAllocation regs =
            allocateRegisters(result.loop, result.schedule, machine);
        int total_regs = 0;
        for (int file : regs.registersPerFile)
            total_regs += file;
        std::cout << "unified II " << base.ii << ", clustered II "
                  << result.ii << " (+" << result.copies << " copies), "
                  << total_regs << " rotating registers\n";
        std::cout << serializeDfg(loop) << "\n";
    }
    return 0;
}
