/**
 * @file
 * The paper's Section 3 walkthrough, executable.
 *
 * Assigns the Figure 6 loop onto the hypothetical machine of the
 * example (two clusters of one GP unit, two buses, one port each) and
 * shows how the full algorithm -- SCC-first ordering plus predicted
 * copy reservation -- reaches II = MII = 4 while the stripped-down
 * variants may need a larger II.
 */

#include <iostream>

#include "graph/builder.hh"
#include "graph/dot.hh"
#include "machine/machine.hh"
#include "pipeline/driver.hh"

int
main()
{
    using namespace cams;

    // Figure 6: unit latencies except C (2 cycles); B->C->D->B is a
    // distance-1 recurrence, so RecMII = (1+2+1)/1 = 4.
    Dfg loop = DfgBuilder("figure6")
                   .op("A", Opcode::IntAlu)
                   .op("B", Opcode::IntAlu)
                   .op("C", Opcode::IntAlu, 2)
                   .op("D", Opcode::IntAlu)
                   .op("E", Opcode::IntAlu)
                   .op("F", Opcode::IntAlu)
                   .chain({"A", "B", "C", "D", "E", "F"})
                   .carried("D", "B", 1)
                   .build();

    // The example machine: 2 clusters x 1 GP unit, 2 buses, 1 port.
    MachineDesc machine;
    machine.name = "2c-1gp-2b-1p";
    machine.interconnect = InterconnectKind::Bus;
    machine.numBuses = 2;
    for (int c = 0; c < 2; ++c) {
        ClusterDesc cluster;
        cluster.gpUnits = 1;
        cluster.readPorts = 1;
        cluster.writePorts = 1;
        machine.clusters.push_back(cluster);
    }
    machine.validate();

    const CompileResult unified =
        compileUnified(loop, machine.unifiedEquivalent());
    std::cout << "unified machine (width 2): II = " << unified.ii
              << " (RecMII " << unified.mii.recMii << ", ResMII "
              << unified.mii.resMii << ")\n\n";

    struct Variant
    {
        const char *name;
        bool iterative;
        bool heuristic;
    };
    const Variant variants[] = {
        {"heuristic iterative", true, true},
        {"simple iterative", true, false},
        {"heuristic", false, true},
        {"simple", false, false},
    };

    for (const Variant &variant : variants) {
        CompileOptions options;
        options.assign.iterative = variant.iterative;
        options.assign.fullHeuristic = variant.heuristic;
        const CompileResult result =
            compileClustered(loop, machine, options);
        std::cout << variant.name << ": ";
        if (!result.success) {
            std::cout << "failed\n";
            continue;
        }
        std::cout << "II = " << result.ii << ", copies = "
                  << result.copies
                  << (result.ii == unified.ii
                          ? "  <- matches the unified machine"
                          : "")
                  << "\n";
    }

    // Show the full algorithm's assignment in detail.
    const CompileResult best = compileClustered(loop, machine);
    if (best.success) {
        std::cout << "\nplacements (full algorithm):\n";
        for (NodeId v = 0; v < best.loop.graph.numNodes(); ++v) {
            const auto &place = best.loop.placement[v];
            std::cout << "  " << best.loop.graph.node(v).name << " -> C"
                      << place.cluster;
            if (!place.copyDsts.empty()) {
                std::cout << " (copy to";
                for (ClusterId dst : place.copyDsts)
                    std::cout << " C" << dst;
                std::cout << ")";
            }
            std::cout << "\n";
        }
        std::cout << "\nkernel:\n" << best.schedule.dump(best.loop);

        std::vector<int> clusters;
        for (const auto &place : best.loop.placement)
            clusters.push_back(place.cluster);
        std::cout << "\nDOT (pipe into graphviz):\n"
                  << toDot(best.loop.graph, &clusters);
    }
    return 0;
}
