/**
 * @file
 * Tests for the stage-scheduling register post-pass: legality
 * preservation (rows intact, dependences honored), monotone lifetime
 * improvement, and the expected behavior on slack-free recurrences.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "sched/regmetrics.hh"
#include "sched/stage.hh"
#include "sched/verifier.hh"
#include "workload/kernels.hh"
#include "workload/suite.hh"

namespace cams
{
namespace
{

TEST(StageSchedule, NeverWorsensLifetime)
{
    const MachineDesc machine = unifiedGpMachine(8);
    for (const Dfg &kernel : allKernels()) {
        const CompileResult result = compileUnified(kernel, machine);
        ASSERT_TRUE(result.success);
        const StageScheduleResult staged =
            stageSchedule(result.loop, result.schedule);
        EXPECT_LE(staged.lifetimeAfter, staged.lifetimeBefore)
            << kernel.name();
    }
}

TEST(StageSchedule, KeepsRowsAndLegality)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const ResourceModel model(machine);
    for (const Dfg &kernel : allKernels()) {
        const CompileResult result = compileClustered(kernel, machine);
        ASSERT_TRUE(result.success);
        const StageScheduleResult staged =
            stageSchedule(result.loop, result.schedule);
        for (NodeId v = 0; v < result.loop.graph.numNodes(); ++v) {
            EXPECT_EQ(staged.schedule.row(v), result.schedule.row(v))
                << kernel.name() << " moved a row";
        }
        std::string why;
        EXPECT_TRUE(verifySchedule(result.loop, model, staged.schedule,
                                   &why))
            << kernel.name() << ": " << why;
    }
}

TEST(StageSchedule, ShrinksAnArtificiallyStretchedValue)
{
    // a feeds b; b is scheduled three stages late on purpose.
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::IntAlu)
                    .op("c", Opcode::Store)
                    .chain({"a", "b", "c"})
                    .build();
    const AnnotatedLoop loop = unifiedLoop(graph);
    Schedule stretched;
    stretched.ii = 2;
    stretched.startCycle = {0, 8, 11};
    const StageScheduleResult staged = stageSchedule(loop, stretched);
    EXPECT_LT(staged.lifetimeAfter, staged.lifetimeBefore);
    EXPECT_GT(staged.moves, 0);
    // b can slide down to its dependence bound (a lasts 2 cycles).
    const RegMetrics before = computeRegMetrics(loop, stretched);
    const RegMetrics after = computeRegMetrics(loop, staged.schedule);
    EXPECT_LT(after.totalLifetime, before.totalLifetime);
}

TEST(StageSchedule, RecurrenceIsPinned)
{
    // Inside a tight recurrence no op has a whole-II of slack.
    Dfg graph = kernelTridiag();
    const MachineDesc machine = unifiedGpMachine(8);
    const CompileResult result = compileUnified(graph, machine);
    ASSERT_TRUE(result.success);
    const StageScheduleResult staged =
        stageSchedule(result.loop, result.schedule);
    // sub (2) and mul (3) form the RecMII-critical cycle: unmoved.
    EXPECT_EQ(staged.schedule.startCycle[2], result.schedule.startCycle[2]);
    EXPECT_EQ(staged.schedule.startCycle[3], result.schedule.startCycle[3]);
}

TEST(StageSchedule, FixpointIsStable)
{
    const MachineDesc machine = unifiedGpMachine(8);
    const CompileResult result =
        compileUnified(kernelStateEquation(), machine);
    ASSERT_TRUE(result.success);
    const StageScheduleResult first =
        stageSchedule(result.loop, result.schedule);
    const StageScheduleResult second =
        stageSchedule(result.loop, first.schedule);
    EXPECT_EQ(second.moves, 0);
    EXPECT_EQ(second.lifetimeAfter, first.lifetimeAfter);
}

TEST(StageSchedule, GeneratedLoopsStayLegal)
{
    const MachineDesc machine = busedFsMachine(2, 2, 1);
    const ResourceModel model(machine);
    for (uint64_t seed = 8200; seed < 8210; ++seed) {
        const Dfg loop = generateLoop(seed);
        const CompileResult result = compileClustered(loop, machine);
        ASSERT_TRUE(result.success) << seed;
        const StageScheduleResult staged =
            stageSchedule(result.loop, result.schedule);
        std::string why;
        EXPECT_TRUE(verifySchedule(result.loop, model, staged.schedule,
                                   &why))
            << seed << ": " << why;
        EXPECT_LE(staged.lifetimeAfter, staged.lifetimeBefore) << seed;
    }
}

} // namespace
} // namespace cams
