/**
 * @file
 * Tests of the persistent compile cache: canonical-hash invariance
 * under node renumbering, the exact-match gate that keeps isomorphic
 * renumberings from being served someone else's node ids, binary
 * round-trips of CompileResult, rejection of version-mismatched and
 * truncated entries, concurrent read/write through the batch thread
 * pool, and the stale-hint fallback to the cold path.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "machine/configs.hh"
#include "pipeline/batch.hh"
#include "pipeline/cache/compile_cache.hh"
#include "pipeline/cache/hash.hh"
#include "pipeline/cache/serialize.hh"
#include "pipeline/driver.hh"
#include "workload/suite.hh"

namespace cams
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory under the test temp root. */
std::string
scratchDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    return dir.string();
}

/** A small loop with a recurrence and distinct opcode mix. */
Dfg
sampleLoop()
{
    Dfg graph;
    graph.setName("sample");
    const NodeId load = graph.addNode(Opcode::Load);
    const NodeId mul = graph.addNode(Opcode::FpMult);
    const NodeId add = graph.addNode(Opcode::IntAlu);
    const NodeId store = graph.addNode(Opcode::Store);
    graph.addEdge(load, mul);
    graph.addEdge(mul, add);
    graph.addEdge(add, store);
    graph.addEdge(add, mul, -1, 1); // recurrence
    return graph;
}

/** Rebuilds a graph with nodes added in permuted order (and fresh
 *  names): isomorphic, but every node id differs. perm[i] is the old
 *  id that becomes new id i. */
Dfg
permuted(const Dfg &graph, const std::vector<NodeId> &perm)
{
    Dfg out;
    out.setName("permuted");
    std::vector<NodeId> newId(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) {
        const DfgNode &node = graph.node(perm[i]);
        newId[perm[i]] = out.addNode(node.op, node.latency,
                                     "p" + std::to_string(i));
    }
    for (int e = 0; e < graph.numEdges(); ++e) {
        const DfgEdge &edge = graph.edge(e);
        out.addEdge(newId[edge.src], newId[edge.dst], edge.latency,
                    edge.distance);
    }
    return out;
}

TEST(CacheHash, InvariantUnderRenumbering)
{
    const Dfg graph = sampleLoop();
    const uint64_t h = canonicalLoopHash(graph);
    EXPECT_EQ(h, canonicalLoopHash(permuted(graph, {3, 1, 0, 2})));
    EXPECT_EQ(h, canonicalLoopHash(permuted(graph, {2, 3, 1, 0})));

    // Structure changes move the hash: a different opcode...
    Dfg other = permuted(graph, {0, 1, 2, 3});
    other.node(1).op = Opcode::IntAlu;
    EXPECT_NE(h, canonicalLoopHash(other));
    // ...or a different dependence distance.
    Dfg far = sampleLoop();
    far.addEdge(0, 3, -1, 2);
    EXPECT_NE(h, canonicalLoopHash(far));
}

TEST(CacheHash, NamesDoNotParticipate)
{
    Dfg named = sampleLoop();
    named.setName("completely-different");
    named.node(0).name = "renamed";
    EXPECT_EQ(canonicalLoopHash(sampleLoop()),
              canonicalLoopHash(named));
}

TEST(CacheSerialize, DfgRoundTripPreservesIds)
{
    // Anonymous and duplicate-named nodes round-trip exactly -- the
    // property the text format cannot provide.
    Dfg graph;
    graph.addNode(Opcode::Load, -1, "dup");
    graph.addNode(Opcode::IntAlu, -1, "dup");
    graph.addNode(Opcode::Store); // anonymous
    graph.addEdge(0, 1);
    graph.addEdge(1, 2, 7, 3);

    Dfg back;
    ASSERT_TRUE(readDfg(packDfg(graph), back));
    ASSERT_EQ(back.numNodes(), graph.numNodes());
    ASSERT_EQ(back.numEdges(), graph.numEdges());
    for (NodeId v = 0; v < graph.numNodes(); ++v) {
        EXPECT_EQ(back.node(v).op, graph.node(v).op);
        EXPECT_EQ(back.node(v).latency, graph.node(v).latency);
        EXPECT_EQ(back.node(v).name, graph.node(v).name);
    }
    for (int e = 0; e < graph.numEdges(); ++e) {
        EXPECT_EQ(back.edge(e).src, graph.edge(e).src);
        EXPECT_EQ(back.edge(e).dst, graph.edge(e).dst);
        EXPECT_EQ(back.edge(e).latency, graph.edge(e).latency);
        EXPECT_EQ(back.edge(e).distance, graph.edge(e).distance);
    }
    EXPECT_EQ(packDfg(back), packDfg(graph));
}

TEST(CacheSerialize, CompileResultRoundTrip)
{
    const Dfg graph = sampleLoop();
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const CompileResult result = compileClustered(graph, machine);
    ASSERT_TRUE(result.success);

    ByteWriter writer;
    writeCompileResult(writer, result);
    const std::string bytes = writer.take();

    ByteReader reader(bytes);
    CompileResult back;
    ASSERT_TRUE(readCompileResult(reader, back));
    ASSERT_TRUE(reader.atEnd());

    EXPECT_EQ(back.success, result.success);
    EXPECT_EQ(back.ii, result.ii);
    EXPECT_EQ(back.mii.mii, result.mii.mii);
    EXPECT_EQ(back.mii.recMii, result.mii.recMii);
    EXPECT_EQ(back.mii.resMii, result.mii.resMii);
    EXPECT_EQ(back.copies, result.copies);
    EXPECT_EQ(back.attempts, result.attempts);
    EXPECT_EQ(back.evictions, result.evictions);
    EXPECT_EQ(back.failure, result.failure);
    EXPECT_EQ(back.degraded, result.degraded);
    EXPECT_EQ(back.ctxHits, result.ctxHits);
    EXPECT_EQ(back.mrtWordScans, result.mrtWordScans);
    EXPECT_EQ(back.phaseMs.totalMs, result.phaseMs.totalMs);
    EXPECT_EQ(back.schedule.ii, result.schedule.ii);
    EXPECT_EQ(back.schedule.startCycle, result.schedule.startCycle);
    EXPECT_EQ(packDfg(back.loop.graph), packDfg(result.loop.graph));
    ASSERT_EQ(back.loop.placement.size(), result.loop.placement.size());
    for (size_t i = 0; i < result.loop.placement.size(); ++i) {
        EXPECT_EQ(back.loop.placement[i].cluster,
                  result.loop.placement[i].cluster);
        EXPECT_EQ(back.loop.placement[i].copyDsts,
                  result.loop.placement[i].copyDsts);
    }
    // Transient cache flags never travel.
    EXPECT_FALSE(back.fromCache);
    EXPECT_FALSE(back.cacheProbed);
}

TEST(CacheSerialize, ReaderRejectsTruncation)
{
    ByteWriter writer;
    writer.u64(42);
    writer.str("hello");
    const std::string bytes = writer.take();
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
        ByteReader reader(bytes.substr(0, cut));
        uint64_t v = 0;
        std::string s;
        EXPECT_FALSE(reader.u64(v) && reader.str(s) && reader.atEnd())
            << "accepted a " << cut << "-byte truncation";
    }
}

TEST(CompileCacheTest, HitServesStoredResult)
{
    const std::string dir = scratchDir("cache_hit");
    const Dfg graph = sampleLoop();
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    CompileOptions options;

    CompileCache cache(dir, CacheMode::ReadWrite);
    ASSERT_TRUE(cache.enabled());
    options.cache = &cache;

    const CompileResult cold = compileClustered(graph, machine, options);
    ASSERT_TRUE(cold.success);
    EXPECT_TRUE(cold.cacheProbed);
    EXPECT_FALSE(cold.fromCache);

    const CompileResult warm = compileClustered(graph, machine, options);
    EXPECT_TRUE(warm.fromCache);
    EXPECT_EQ(warm.ii, cold.ii);
    EXPECT_EQ(warm.copies, cold.copies);
    EXPECT_EQ(warm.attempts, cold.attempts);
    EXPECT_EQ(packDfg(warm.loop.graph), packDfg(cold.loop.graph));

    // A second cache on the same directory (a new process) serves the
    // same entry.
    CompileCache reopened(dir, CacheMode::ReadOnly);
    CompileOptions ro = options;
    ro.cache = &reopened;
    const CompileResult again = compileClustered(graph, machine, ro);
    EXPECT_TRUE(again.fromCache);
    EXPECT_EQ(again.ii, cold.ii);
}

TEST(CompileCacheTest, IsomorphicRenumberingMissesOnExactMatch)
{
    const std::string dir = scratchDir("cache_iso");
    const Dfg graph = sampleLoop();
    const Dfg twin = permuted(graph, {3, 1, 0, 2});
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    CompileOptions options;

    CompileCache cache(dir, CacheMode::ReadWrite);
    options.cache = &cache;
    ASSERT_TRUE(compileClustered(graph, machine, options).success);

    // Same canonical hash, same entry file -- but the byte-exact gate
    // must refuse to serve the twin another graph's node ids.
    const CacheKey key = makeCacheKey(graph, machine, options, true);
    const CacheKey twinKey = makeCacheKey(twin, machine, options, true);
    EXPECT_EQ(key.loopHash, twinKey.loopHash);
    CompileResult out;
    EXPECT_FALSE(cache.lookup(twinKey, twin, machine, out));

    const CompileResult res = compileClustered(twin, machine, options);
    EXPECT_TRUE(res.success);
    EXPECT_FALSE(res.fromCache);
}

TEST(CompileCacheTest, RejectsVersionMismatchAndTruncation)
{
    const std::string dir = scratchDir("cache_corrupt");
    const Dfg graph = sampleLoop();
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    CompileOptions options;

    {
        CompileCache cache(dir, CacheMode::ReadWrite);
        options.cache = &cache;
        ASSERT_TRUE(compileClustered(graph, machine, options).success);
    }
    const CacheKey key = makeCacheKey(graph, machine, options, true);
    const fs::path entry = fs::path(dir) / key.fileName();
    ASSERT_TRUE(fs::exists(entry));

    // Flip the format-version field (bytes 4..7 after the magic).
    {
        std::fstream f(entry, std::ios::in | std::ios::out |
                                  std::ios::binary);
        f.seekp(4);
        f.put(char(0x7f));
    }
    {
        CompileCache cache(dir, CacheMode::ReadWrite);
        CompileResult out;
        EXPECT_FALSE(cache.lookup(key, graph, machine, out));
        EXPECT_EQ(cache.totals().rejects, 1);
        // rw mode unlinks the bad entry.
        EXPECT_FALSE(fs::exists(entry));
    }

    // Repopulate, then truncate the payload.
    {
        CompileCache cache(dir, CacheMode::ReadWrite);
        options.cache = &cache;
        ASSERT_TRUE(compileClustered(graph, machine, options).success);
    }
    ASSERT_TRUE(fs::exists(entry));
    fs::resize_file(entry, fs::file_size(entry) / 2);
    {
        CompileCache cache(dir, CacheMode::ReadWrite);
        CompileResult out;
        EXPECT_FALSE(cache.lookup(key, graph, machine, out));
        EXPECT_EQ(cache.totals().rejects, 1);
        options.cache = &cache;
        // And the compile path degrades to a cold compile.
        const CompileResult res =
            compileClustered(graph, machine, options);
        EXPECT_TRUE(res.success);
        EXPECT_FALSE(res.fromCache);
    }
}

TEST(CompileCacheTest, ReadOnlyModeWritesNothing)
{
    const std::string dir = scratchDir("cache_ro");
    fs::create_directories(dir);
    const Dfg graph = sampleLoop();
    const MachineDesc machine = busedGpMachine(2, 2, 1);

    CompileCache cache(dir, CacheMode::ReadOnly);
    ASSERT_TRUE(cache.enabled());
    CompileOptions options;
    options.cache = &cache;
    ASSERT_TRUE(compileClustered(graph, machine, options).success);
    EXPECT_EQ(cache.totals().entries, 0);
    EXPECT_TRUE(fs::is_empty(dir));
}

TEST(CompileCacheTest, FaultInjectedCompilesBypassTheCache)
{
    const std::string dir = scratchDir("cache_faults");
    const Dfg graph = sampleLoop();
    const MachineDesc machine = busedGpMachine(2, 2, 1);

    CompileCache cache(dir, CacheMode::ReadWrite);
    CompileOptions options;
    options.cache = &cache;
    options.faults = std::make_shared<FaultInjector>(
        FaultConfig::uniform(0.5, 7));
    const CompileResult res = compileClustered(graph, machine, options);
    EXPECT_FALSE(res.cacheProbed);
    EXPECT_EQ(cache.totals().entries, 0);
}

TEST(CompileCacheTest, ConcurrentReadWriteThroughThePool)
{
    const std::string dir = scratchDir("cache_mt");
    const std::vector<Dfg> suite = buildSuite(40);
    const MachineDesc machine = busedGpMachine(2, 2, 1);

    CompileCache cache(dir, CacheMode::ReadWrite);
    CompileOptions options;
    options.cache = &cache;

    // Cold fan-out: 8 workers race lookups and stores on one cache.
    const BatchOutcome cold =
        BatchRunner::run(clusteredJobs(suite, machine, options), 8);
    EXPECT_EQ(cold.stats.cacheMisses + cold.stats.cacheHits, 40);

    // Warm fan-out must serve every job with identical figures.
    const BatchOutcome warm =
        BatchRunner::run(clusteredJobs(suite, machine, options), 8);
    EXPECT_EQ(warm.stats.cacheHits, 40);
    ASSERT_EQ(warm.results.size(), cold.results.size());
    for (size_t i = 0; i < cold.results.size(); ++i) {
        EXPECT_EQ(warm.results[i].success, cold.results[i].success);
        EXPECT_EQ(warm.results[i].ii, cold.results[i].ii);
        EXPECT_EQ(warm.results[i].copies, cold.results[i].copies);
        EXPECT_EQ(warm.results[i].attempts, cold.results[i].attempts);
    }
}

TEST(CompileCacheTest, WarmStartHintAndStaleFallback)
{
    const MachineDesc machine = busedGpMachine(2, 1, 1); // starved
    const std::vector<Dfg> suite = buildSuite(60);

    // Find a loop whose clustered search had to escalate: achieved II
    // at least two above MII, so an intermediate II provably fails.
    const Dfg *loop = nullptr;
    CompileResult cold;
    for (const Dfg &candidate : suite) {
        const CompileResult res = compileClustered(candidate, machine);
        if (res.success && res.degraded == DegradeLevel::None &&
            res.ii >= res.mii.mii + 2) {
            loop = &candidate;
            cold = res;
            break;
        }
    }
    ASSERT_NE(loop, nullptr)
        << "no loop with II >= MII + 2 in the sample";

    CompileOptions options;
    const CacheKey key = makeCacheKey(*loop, machine, options, true);

    {
        // A good hint (the achieved II) satisfies the search in one
        // verified probe, with the cold result's II.
        const std::string dir = scratchDir("cache_hint_good");
        CompileCache cache(dir, CacheMode::ReadWrite);
        cache.storeHint(key, {cold.ii, cold.mii.mii, 0});
        options.cache = &cache;
        const CompileResult hinted =
            compileClustered(*loop, machine, options);
        ASSERT_TRUE(hinted.success);
        EXPECT_TRUE(hinted.hintUsed);
        EXPECT_FALSE(hinted.hintStale);
        EXPECT_EQ(hinted.ii, cold.ii);
        EXPECT_EQ(hinted.attempts, 1);
        // Hint-assisted results are never stored as full entries.
        EXPECT_EQ(cache.totals().entries, 0);
    }

    {
        // A stale hint (an II the search already proved infeasible)
        // fails its one probe and falls back to the cold path.
        const std::string dir = scratchDir("cache_hint_stale");
        CompileCache cache(dir, CacheMode::ReadWrite);
        cache.storeHint(key, {cold.mii.mii + 1, cold.mii.mii, 0});
        options.cache = &cache;
        const CompileResult res =
            compileClustered(*loop, machine, options);
        ASSERT_TRUE(res.success);
        EXPECT_TRUE(res.hintStale);
        EXPECT_FALSE(res.hintUsed);
        EXPECT_EQ(res.ii, cold.ii);
        // The cold outcome it fell back to is stored.
        EXPECT_EQ(cache.totals().entries, 1);
    }
}

TEST(CompileCacheTest, HintsPersistAcrossReopen)
{
    const std::string dir = scratchDir("cache_hint_log");
    const Dfg graph = sampleLoop();
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    CompileOptions options;
    const CacheKey key = makeCacheKey(graph, machine, options, true);

    {
        CompileCache cache(dir, CacheMode::ReadWrite);
        cache.storeHint(key, {5, 3, 2});
        cache.storeHint(key, {4, 3, 1}); // last write wins
    }
    CompileCache reopened(dir, CacheMode::ReadOnly);
    WarmStartHint hint;
    ASSERT_TRUE(reopened.hint(key, hint));
    EXPECT_EQ(hint.ii, 4);
    EXPECT_EQ(hint.mii, 3);
    EXPECT_EQ(hint.rotation, 1);
}

/** Whole-file read/write helpers for corruption tests. */
std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
spill(const fs::path &path, const std::string &bytes, size_t length)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(
                  std::min(length, bytes.size())));
}

TEST(CompileCacheTest, ScrubQuarantinesTornEntryAtEveryBoundary)
{
    const std::string dir = scratchDir("cache_scrub_torn");
    const Dfg graph = sampleLoop();
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    CompileOptions options;
    CompileResult cold;
    {
        CompileCache cache(dir, CacheMode::ReadWrite);
        options.cache = &cache;
        cold = compileClustered(graph, machine, options);
        ASSERT_TRUE(cold.success);
    }
    const CacheKey key = makeCacheKey(graph, machine, options, true);
    const fs::path entry = fs::path(dir) / key.fileName();
    const std::string valid = slurp(entry);
    ASSERT_FALSE(valid.empty());

    // A write torn at *any* byte must be quarantined, never served.
    for (size_t length = 0; length < valid.size(); ++length) {
        spill(entry, valid, length);
        const ScrubReport report = scrubCacheDir(dir);
        ASSERT_TRUE(report.error.empty()) << report.error;
        ASSERT_EQ(report.entriesScanned, 1) << "length " << length;
        ASSERT_EQ(report.quarantined, 1) << "length " << length;
        ASSERT_FALSE(fs::exists(entry)) << "length " << length;
        fs::remove_all(fs::path(dir) / "corrupt");
    }

    // Intact bytes survive the scrub, and the warm lookup after it
    // serves the same result the cold compile produced.
    spill(entry, valid, valid.size());
    const ScrubReport clean = scrubCacheDir(dir);
    EXPECT_EQ(clean.entriesOk, 1);
    EXPECT_EQ(clean.quarantined, 0);
    CompileCache cache(dir, CacheMode::ReadWrite);
    options.cache = &cache;
    const CompileResult warm = compileClustered(graph, machine,
                                                options);
    EXPECT_TRUE(warm.fromCache);
    EXPECT_EQ(warm.ii, cold.ii);
    EXPECT_EQ(warm.copies, cold.copies);
    EXPECT_EQ(packDfg(warm.loop.graph), packDfg(cold.loop.graph));
}

TEST(CompileCacheTest, ScrubQuarantinesBitRotAndMisnamedEntries)
{
    const std::string dir = scratchDir("cache_scrub_rot");
    const Dfg graph = sampleLoop();
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    CompileOptions options;
    {
        CompileCache cache(dir, CacheMode::ReadWrite);
        options.cache = &cache;
        ASSERT_TRUE(
            compileClustered(graph, machine, options).success);
    }
    const CacheKey key = makeCacheKey(graph, machine, options, true);
    const fs::path entry = fs::path(dir) / key.fileName();
    const std::string valid = slurp(entry);

    // One flipped bit deep in the payload: the checksum catches it.
    std::string rotten = valid;
    rotten[rotten.size() - 3] ^= 0x20;
    spill(entry, rotten, rotten.size());
    // And valid bytes filed under the wrong name: the stored-hash /
    // file-name consistency check catches the mismatch.
    const fs::path foreign = fs::path(dir) / "0123456789abcdef.cce";
    spill(foreign, valid, valid.size());

    const ScrubReport report = scrubCacheDir(dir);
    EXPECT_EQ(report.entriesScanned, 2);
    EXPECT_EQ(report.quarantined, 2);
    EXPECT_EQ(report.entriesOk, 0);
    EXPECT_FALSE(fs::exists(entry));
    EXPECT_FALSE(fs::exists(foreign));
    // Quarantined, not deleted: the evidence moves to corrupt/.
    EXPECT_TRUE(fs::exists(fs::path(dir) / "corrupt" /
                           key.fileName()));
}

TEST(CompileCacheTest, ScrubRemovesWriterDebrisAndRebuildsIndex)
{
    const std::string dir = scratchDir("cache_scrub_tmp");
    const Dfg graph = sampleLoop();
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    CompileOptions options;
    {
        CompileCache cache(dir, CacheMode::ReadWrite);
        options.cache = &cache;
        ASSERT_TRUE(
            compileClustered(graph, machine, options).success);
    }
    // Debris of a writer killed between open and rename, plus a
    // corrupt entry the index would otherwise have trusted.
    spill(fs::path(dir) / ".tmp-12345-deadbeef", "partial", 7);
    spill(fs::path(dir) / "00000000000000ff.cce", "garbage", 7);

    CompileCache cache(dir, CacheMode::ReadWrite);
    EXPECT_EQ(cache.totals().entries, 2); // scan trusted both names
    const ScrubReport report = cache.scrub();
    EXPECT_EQ(report.tmpRemoved, 1);
    EXPECT_EQ(report.quarantined, 1);
    EXPECT_EQ(report.entriesOk, 1);
    EXPECT_EQ(cache.totals().entries, 1); // index rebuilt
    EXPECT_EQ(cache.totals().quarantined, 1);
    EXPECT_FALSE(fs::exists(fs::path(dir) / ".tmp-12345-deadbeef"));

    const CacheKey key = makeCacheKey(graph, machine, options, true);
    CompileResult out;
    EXPECT_TRUE(cache.lookup(key, graph, machine, out));

    // And a scrub of a directory that is not there reports an error
    // instead of inventing an empty one.
    const ScrubReport missing =
        scrubCacheDir(dir + "/does-not-exist");
    EXPECT_FALSE(missing.error.empty());
}

TEST(CompileCacheTest, ScrubRepairsTornHintLogAtEveryBoundary)
{
    const std::string dir = scratchDir("cache_scrub_hints");
    std::vector<CacheKey> keys;
    {
        CompileCache cache(dir, CacheMode::ReadWrite);
        for (int i = 0; i < 3; ++i) {
            CacheKey key;
            key.loopHash = 100 + i;
            key.machineHash = 7;
            key.optionsHash = 9;
            key.hintSalt = static_cast<uint64_t>(i);
            keys.push_back(key);
            WarmStartHint hint;
            hint.ii = 4 + i;
            hint.mii = 3;
            hint.rotation = i;
            cache.storeHint(key, hint);
        }
    }
    const fs::path hintPath = fs::path(dir) / "hints.log";
    const std::string valid = slurp(hintPath);
    ASSERT_FALSE(valid.empty());
    ASSERT_EQ(valid.back(), '\n');
    std::vector<size_t> newlines;
    for (size_t i = 0; i < valid.size(); ++i)
        if (valid[i] == '\n')
            newlines.push_back(i);
    ASSERT_EQ(newlines.size(), 3u);

    for (size_t length = 0; length < valid.size(); ++length) {
        spill(hintPath, valid, length);
        const ScrubReport report = scrubCacheDir(dir);
        ASSERT_TRUE(report.error.empty()) << report.error;
        long fullLines = 0;
        for (const size_t pos : newlines)
            fullLines += pos < length ? 1 : 0;
        const bool tornTail =
            length > 0 && valid[length - 1] != '\n';
        ASSERT_EQ(report.hintLinesKept, fullLines)
            << "length " << length;
        ASSERT_EQ(report.hintLinesDropped, tornTail ? 1 : 0)
            << "length " << length;
        ASSERT_EQ(report.hintLogRepaired, tornTail)
            << "length " << length;
        if (tornTail) {
            // The rewritten log is clean: scrubbing again drops
            // nothing and keeps the same lines.
            const ScrubReport again = scrubCacheDir(dir);
            ASSERT_EQ(again.hintLinesKept, fullLines);
            ASSERT_EQ(again.hintLinesDropped, 0);
        }
        fs::remove_all(fs::path(dir) / "corrupt");
    }

    // With the intact log back, every stored hint is served.
    spill(hintPath, valid, valid.size());
    CompileCache cache(dir, CacheMode::ReadWrite);
    for (size_t i = 0; i < keys.size(); ++i) {
        WarmStartHint hint;
        ASSERT_TRUE(cache.hint(keys[i], hint)) << "key " << i;
        EXPECT_EQ(hint.ii, 4 + static_cast<int>(i));
    }
}

TEST(CompileCacheTest, ModeParsing)
{
    CacheMode mode = CacheMode::Off;
    EXPECT_TRUE(parseCacheMode("rw", mode));
    EXPECT_EQ(mode, CacheMode::ReadWrite);
    EXPECT_TRUE(parseCacheMode("ro", mode));
    EXPECT_EQ(mode, CacheMode::ReadOnly);
    EXPECT_TRUE(parseCacheMode("off", mode));
    EXPECT_EQ(mode, CacheMode::Off);
    EXPECT_FALSE(parseCacheMode("readwrite", mode));
    EXPECT_STREQ(cacheModeName(CacheMode::ReadWrite), "rw");
}

} // namespace
} // namespace cams
