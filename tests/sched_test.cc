/**
 * @file
 * Unit tests for the schedulers (IMS, SMS), the schedule container
 * and the independent verifier.
 */

#include <gtest/gtest.h>

#include "assign/assigner.hh"
#include "graph/builder.hh"
#include "graph/recmii.hh"
#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "sched/ims.hh"
#include "sched/mii.hh"
#include "sched/sms.hh"
#include "sched/verifier.hh"
#include "workload/kernels.hh"

namespace cams
{
namespace
{

void
expectSchedules(const ModuloScheduler &scheduler, const Dfg &graph,
                const MachineDesc &machine, int ii)
{
    const ResourceModel model(machine);
    const AnnotatedLoop loop = unifiedLoop(graph);
    Schedule schedule;
    ASSERT_TRUE(scheduler.schedule(loop, model, ii, schedule))
        << scheduler.name() << " failed at II " << ii;
    std::string why;
    EXPECT_TRUE(verifySchedule(loop, model, schedule, &why))
        << scheduler.name() << ": " << why;
    EXPECT_EQ(schedule.ii, ii);
}

TEST(Mii, ResMiiGpIsOpsOverWidth)
{
    Dfg graph = kernelHydro(); // 11 ops
    EXPECT_EQ(resMii(graph, unifiedGpMachine(8)), 2);
    EXPECT_EQ(resMii(graph, unifiedGpMachine(4)), 3);
    EXPECT_EQ(resMii(graph, unifiedGpMachine(16)), 1);
}

TEST(Mii, ResMiiFsIsPerClassMax)
{
    Dfg graph = kernelHydro(); // 4 mem, 2 int, 5 fp
    // Unified of 2-cluster FS: 2 mem, 4 int, 2 fp.
    const MachineDesc unified = unifiedFsMachine(2, 4, 2);
    EXPECT_EQ(resMii(graph, unified), 3); // ceil(5 fp / 2 fp units)
}

TEST(Mii, CopiesExcluded)
{
    Dfg graph;
    graph.addNode(Opcode::IntAlu);
    graph.addNode(Opcode::Copy);
    EXPECT_EQ(resMii(graph, unifiedGpMachine(1)), 1);
}

TEST(Mii, MaxOfRecAndRes)
{
    Dfg graph = kernelTridiag(); // RecMII 4, 7 ops
    const MiiInfo info = computeMii(graph, unifiedGpMachine(8));
    EXPECT_EQ(info.recMii, 4);
    EXPECT_EQ(info.resMii, 1);
    EXPECT_EQ(info.mii, 4);
}

TEST(Schedule, RowsStagesAndLength)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::Store)
                    .flow("a", "b")
                    .build();
    Schedule schedule;
    schedule.ii = 2;
    schedule.startCycle = {0, 3};
    EXPECT_EQ(schedule.row(0), 0);
    EXPECT_EQ(schedule.row(1), 1);
    EXPECT_EQ(schedule.stage(1), 1);
    EXPECT_EQ(schedule.stageCount(), 2);
    EXPECT_EQ(schedule.length(graph), 4);
}

TEST(Schedule, NormalizeKeepsRows)
{
    Schedule schedule;
    schedule.ii = 3;
    schedule.startCycle = {-4, 2, 5};
    const int row0 = schedule.row(0);
    const int row2 = schedule.row(2);
    schedule.normalize();
    EXPECT_GE(*std::min_element(schedule.startCycle.begin(),
                                schedule.startCycle.end()),
              0);
    EXPECT_EQ(schedule.row(0), row0);
    EXPECT_EQ(schedule.row(2), row2);
}

TEST(Verifier, CatchesDependenceViolation)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load) // lat 2
                    .op("b", Opcode::Store)
                    .flow("a", "b")
                    .build();
    const ResourceModel model(unifiedGpMachine(4));
    const AnnotatedLoop loop = unifiedLoop(graph);
    Schedule bad;
    bad.ii = 4;
    bad.startCycle = {0, 1}; // b starts before a's result is ready
    std::string why;
    EXPECT_FALSE(verifySchedule(loop, model, bad, &why));
    EXPECT_NE(why.find("dependence"), std::string::npos);
}

TEST(Verifier, CatchesResourceOverflow)
{
    Dfg graph;
    graph.addNode(Opcode::IntAlu);
    graph.addNode(Opcode::IntAlu);
    const ResourceModel model(unifiedGpMachine(1));
    const AnnotatedLoop loop = unifiedLoop(graph);
    Schedule bad;
    bad.ii = 2;
    bad.startCycle = {0, 2}; // same row 0 on a 1-wide machine
    std::string why;
    EXPECT_FALSE(verifySchedule(loop, model, bad, &why));
    EXPECT_NE(why.find("resource"), std::string::npos);
}

TEST(Verifier, AcceptsLegalSchedule)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::Store)
                    .flow("a", "b")
                    .build();
    const ResourceModel model(unifiedGpMachine(1));
    const AnnotatedLoop loop = unifiedLoop(graph);
    Schedule good;
    good.ii = 2;
    good.startCycle = {0, 3};
    std::string why;
    EXPECT_TRUE(verifySchedule(loop, model, good, &why)) << why;
}

TEST(Ims, SchedulesKernelsAtMii)
{
    const IterativeModuloScheduler ims;
    const MachineDesc machine = unifiedGpMachine(8);
    for (const Dfg &kernel : allKernels()) {
        const MiiInfo mii = computeMii(kernel, machine);
        expectSchedules(ims, kernel, machine, mii.mii);
    }
}

TEST(Sms, SchedulesKernelsAtMii)
{
    const SwingModuloScheduler sms;
    const MachineDesc machine = unifiedGpMachine(8);
    for (const Dfg &kernel : allKernels()) {
        const MiiInfo mii = computeMii(kernel, machine);
        expectSchedules(sms, kernel, machine, mii.mii);
    }
}

TEST(Ims, FailsBelowRecMii)
{
    const IterativeModuloScheduler ims;
    const ResourceModel model(unifiedGpMachine(8));
    Dfg graph = kernelTridiag(); // RecMII 4
    Schedule schedule;
    EXPECT_FALSE(ims.schedule(unifiedLoop(graph), model, 3, schedule));
}

TEST(Sms, FailsBelowRecMii)
{
    const SwingModuloScheduler sms;
    const ResourceModel model(unifiedGpMachine(8));
    Dfg graph = kernelTridiag();
    Schedule schedule;
    EXPECT_FALSE(sms.schedule(unifiedLoop(graph), model, 3, schedule));
}

TEST(Ims, TightResourceSchedule)
{
    // 4 int ops on a 1-wide machine at II 4: a perfect packing.
    DfgBuilder b("t");
    for (int i = 0; i < 4; ++i)
        b.op("n" + std::to_string(i), Opcode::IntAlu);
    expectSchedules(IterativeModuloScheduler(), b.build(),
                    unifiedGpMachine(1), 4);
}

TEST(Sms, TightResourceSchedule)
{
    DfgBuilder b("t");
    for (int i = 0; i < 4; ++i)
        b.op("n" + std::to_string(i), Opcode::IntAlu);
    expectSchedules(SwingModuloScheduler(), b.build(),
                    unifiedGpMachine(1), 4);
}

TEST(Schedulers, ClusteredLoopWithCopies)
{
    // Assign the hydro kernel across 2 clusters, then schedule the
    // annotated loop with both schedulers and verify.
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const ResourceModel model(machine);
    Dfg graph = kernelHydro();
    const auto assignment = ClusterAssigner(model).run(graph, 2);
    ASSERT_TRUE(assignment.success);

    for (SchedulerKind kind :
         {SchedulerKind::Swing, SchedulerKind::Iterative}) {
        const auto scheduler = makeScheduler(kind);
        Schedule schedule;
        bool ok = false;
        for (int ii = 2; ii <= 8 && !ok; ++ii) {
            // Reassign at each II exactly like the driver does.
            const auto attempt = ClusterAssigner(model).run(graph, ii);
            if (!attempt.success)
                continue;
            ok = scheduler->schedule(attempt.loop, model, ii, schedule);
            if (ok) {
                std::string why;
                EXPECT_TRUE(verifySchedule(attempt.loop, model, schedule,
                                           &why))
                    << why;
            }
        }
        EXPECT_TRUE(ok) << "scheduler " << scheduler->name();
    }
}

TEST(Schedulers, EmptyGraph)
{
    Dfg graph;
    const ResourceModel model(unifiedGpMachine(1));
    Schedule schedule;
    EXPECT_TRUE(SwingModuloScheduler().schedule(unifiedLoop(graph), model,
                                                1, schedule));
    EXPECT_TRUE(IterativeModuloScheduler().schedule(unifiedLoop(graph),
                                                    model, 1, schedule));
}

TEST(Schedulers, DumpMentionsEveryOp)
{
    Dfg graph = kernelInnerProduct();
    const MachineDesc machine = unifiedGpMachine(8);
    const CompileResult result = compileUnified(graph, machine);
    ASSERT_TRUE(result.success);
    const std::string dump = result.schedule.dump(result.loop);
    for (const DfgNode &node : graph.nodes())
        EXPECT_NE(dump.find(node.name), std::string::npos) << node.name;
}

} // namespace
} // namespace cams
