/**
 * @file
 * Tests of the incremental-compilation layer: the A/B determinism
 * guarantee (cached and from-scratch pipelines produce byte-identical
 * results), the incremental TimingSolver against analyzeTiming, the
 * word-scan MRT against the reference row scan, and the LoopContext
 * cache itself.
 */

#include <gtest/gtest.h>

#include "graph/analysis.hh"
#include "graph/recmii.hh"
#include "machine/configs.hh"
#include "mrt/mrt.hh"
#include "pipeline/context.hh"
#include "pipeline/driver.hh"
#include "support/random.hh"
#include "workload/suite.hh"

namespace cams
{
namespace
{

/** Asserts two compile results are indistinguishable, down to every
 *  start cycle, placement, and bookkeeping counter that must not
 *  depend on the caching mode. */
void
expectSameResult(const CompileResult &a, const CompileResult &b)
{
    ASSERT_EQ(a.success, b.success);
    EXPECT_EQ(a.ii, b.ii);
    EXPECT_EQ(a.mii.recMii, b.mii.recMii);
    EXPECT_EQ(a.mii.resMii, b.mii.resMii);
    EXPECT_EQ(a.mii.mii, b.mii.mii);
    EXPECT_EQ(a.copies, b.copies);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.assignRetries, b.assignRetries);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.failure, b.failure);
    EXPECT_EQ(a.failureDetail, b.failureDetail);
    EXPECT_EQ(a.finalIiTried, b.finalIiTried);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.verifierRejects, b.verifierRejects);
    if (!a.success)
        return;
    EXPECT_EQ(a.schedule.ii, b.schedule.ii);
    EXPECT_EQ(a.schedule.startCycle, b.schedule.startCycle);
    ASSERT_EQ(a.loop.placement.size(), b.loop.placement.size());
    for (size_t i = 0; i < a.loop.placement.size(); ++i) {
        EXPECT_EQ(a.loop.placement[i].cluster,
                  b.loop.placement[i].cluster);
        EXPECT_EQ(a.loop.placement[i].copyDsts,
                  b.loop.placement[i].copyDsts);
    }
}

/** Compiles the suite with and without the incremental layer and
 *  demands byte-identical outcomes, loop by loop. */
void
runDeterminismSweep(SchedulerKind kind, bool clustered)
{
    const std::vector<Dfg> suite = buildSuite(48, 0xAB12CD34ULL);
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const MachineDesc unified = machine.unifiedEquivalent();

    CompileOptions cached;
    cached.scheduler = kind;
    cached.incremental = true;
    CompileOptions scratch = cached;
    scratch.incremental = false;

    for (const Dfg &loop : suite) {
        const CompileResult a =
            clustered ? compileClustered(loop, machine, cached)
                      : compileUnified(loop, unified, cached);
        const CompileResult b =
            clustered ? compileClustered(loop, machine, scratch)
                      : compileUnified(loop, unified, scratch);
        SCOPED_TRACE(loop.name());
        expectSameResult(a, b);
    }
}

TEST(AbDeterminism, ClusteredSwing)
{
    runDeterminismSweep(SchedulerKind::Swing, true);
}

TEST(AbDeterminism, ClusteredIterative)
{
    runDeterminismSweep(SchedulerKind::Iterative, true);
}

TEST(AbDeterminism, UnifiedSwing)
{
    runDeterminismSweep(SchedulerKind::Swing, false);
}

TEST(AbDeterminism, UnifiedIterative)
{
    runDeterminismSweep(SchedulerKind::Iterative, false);
}

void
expectSameTiming(const TimeAnalysis &a, const TimeAnalysis &b)
{
    EXPECT_EQ(a.ii, b.ii);
    EXPECT_EQ(a.asap, b.asap);
    EXPECT_EQ(a.alap, b.alap);
    EXPECT_EQ(a.mobility, b.mobility);
    EXPECT_EQ(a.height, b.height);
    EXPECT_EQ(a.criticalPath, b.criticalPath);
}

TEST(TimingSolver, MatchesFromScratchAcrossEscalation)
{
    const std::vector<Dfg> suite = buildSuite(32, 0x5EED0001ULL);
    for (const Dfg &loop : suite) {
        SCOPED_TRACE(loop.name());
        const int start = recMii(loop);
        TimingSolver solver(loop);
        // Walk an escalation upward, then revisit: every answer must
        // equal the from-scratch fixpoint at that II.
        for (int ii = start; ii < start + 6; ++ii)
            expectSameTiming(solver.solve(ii), analyzeTiming(loop, ii));
        expectSameTiming(solver.solve(start),
                         analyzeTiming(loop, start));
    }
}

TEST(TimingSolver, RepeatedIiIsACacheHit)
{
    const std::vector<Dfg> suite = buildSuite(4, 0x5EED0002ULL);
    const Dfg &loop = suite.front();
    const int start = recMii(loop);
    TimingSolver solver(loop);
    solver.solve(start);
    EXPECT_FALSE(solver.lastWasHit());
    solver.solve(start);
    EXPECT_TRUE(solver.lastWasHit());
    solver.solve(start + 1);
    EXPECT_FALSE(solver.lastWasHit());
}

TEST(LoopContext, MatchesDirectAnalyses)
{
    const std::vector<Dfg> suite = buildSuite(24, 0x5EED0003ULL);
    for (const Dfg &loop : suite) {
        SCOPED_TRACE(loop.name());
        LoopContext ctx(loop);
        const int direct = recMii(loop);
        EXPECT_EQ(ctx.recMii(), direct);
        for (int ii = std::max(1, direct - 2); ii < direct + 3; ++ii)
            EXPECT_EQ(ctx.schedulableAt(ii), direct <= ii);
    }
}

TEST(LoopContext, FeasibilityBoundsCacheWithoutRecMii)
{
    const std::vector<Dfg> suite = buildSuite(4, 0x5EED0004ULL);
    const Dfg &loop = suite.front();
    const int direct = recMii(loop);
    LoopContext ctx(loop);
    // Never ask for recMii(): the monotone bounds alone must answer
    // repeat queries from cache.
    ASSERT_TRUE(ctx.schedulableAt(direct));
    const long misses = ctx.misses();
    EXPECT_TRUE(ctx.schedulableAt(direct));
    EXPECT_TRUE(ctx.schedulableAt(direct + 5));
    EXPECT_EQ(ctx.misses(), misses);
    EXPECT_GT(ctx.hits(), 0);
}

/** One randomized Mrt trajectory, mirrored in Word and Reference
 *  modes; every query along the way must agree. */
void
runMirroredMrtTrajectory(const MachineDesc &machine, uint64_t seed,
                         int ii)
{
    const ResourceModel model(machine);
    Mrt word(model, ii, MrtScanMode::Word);
    Mrt reference(model, ii, MrtScanMode::Reference);
    Rng rng(seed);

    // A menu of requests: single pools plus a few multi-pool combos
    // (with duplicates when the machine allows, via repeated picks).
    std::vector<std::vector<PoolId>> menu;
    for (PoolId pool = 0; pool < model.numPools(); ++pool)
        menu.push_back({pool});
    for (int i = 0; i < 6; ++i) {
        std::vector<PoolId> combo;
        const int size = rng.uniformInt(2, 4);
        for (int j = 0; j < size; ++j) {
            combo.push_back(static_cast<PoolId>(
                rng.uniformInt(0, model.numPools() - 1)));
        }
        menu.push_back(std::move(combo));
    }

    std::vector<Reservation> wordHeld;
    std::vector<Reservation> refHeld;
    for (int step = 0; step < 400; ++step) {
        const std::vector<PoolId> &request =
            menu[rng.uniformInt(0, static_cast<int>(menu.size()) - 1)];
        const int row = rng.uniformInt(0, ii - 1);
        ASSERT_EQ(word.canReserveAt(request, row),
                  reference.canReserveAt(request, row))
            << "step " << step << " row " << row;
        const int count = rng.uniformInt(1, ii);
        const int step_dir = rng.chance(0.5) ? 1 : -1;
        ASSERT_EQ(word.scanRows(request, row, count, step_dir),
                  reference.scanRows(request, row, count, step_dir))
            << "step " << step << " row " << row << " count " << count
            << " dir " << step_dir;

        if (rng.chance(0.65) && word.canReserveAt(request, row)) {
            wordHeld.push_back(word.reserveAt(request, row));
            refHeld.push_back(reference.reserveAt(request, row));
        } else if (!wordHeld.empty() && rng.chance(0.5)) {
            const int victim = rng.uniformInt(
                0, static_cast<int>(wordHeld.size()) - 1);
            word.release(wordHeld[victim]);
            reference.release(refHeld[victim]);
            wordHeld.erase(wordHeld.begin() + victim);
            refHeld.erase(refHeld.begin() + victim);
        }
    }
    // Reference mode records no word scans; word mode must have.
    EXPECT_EQ(reference.wordScans(), 0);
    EXPECT_GT(word.wordScans(), 0);
}

TEST(MrtWordScan, AgreesWithReferenceUnderRandomTraffic)
{
    runMirroredMrtTrajectory(busedGpMachine(2, 2, 1), 0x11AA22BBULL, 7);
    runMirroredMrtTrajectory(busedFsMachine(2, 2, 1), 0x33CC44DDULL,
                             13);
    runMirroredMrtTrajectory(gridMachine(), 0x55EE66FFULL, 64);
    // An II past one occupancy word exercises the multi-word hop.
    runMirroredMrtTrajectory(busedGpMachine(4, 2, 2), 0x7788AA99ULL,
                             131);
}

TEST(MrtWordScan, ResetReusesTheTable)
{
    const ResourceModel model(busedGpMachine(2, 2, 1));
    Mrt mrt(model, 5);
    const std::vector<PoolId> request = {
        model.fuPool(0, FuClass::Integer)};
    for (int row = 0; row < 5; ++row)
        ASSERT_TRUE(mrt.canReserveAt(request, row));
    mrt.reserveAt(request, 3);
    mrt.reset(8);
    for (int row = 0; row < 8; ++row)
        EXPECT_TRUE(mrt.canReserveAt(request, row));
    EXPECT_EQ(mrt.scanRows(request, 5, 8, 1), 0);
}

TEST(CompileResult, IncrementalModeReportsCacheCounters)
{
    const std::vector<Dfg> suite = buildSuite(6, 0x5EED0005ULL);
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    CompileOptions options;
    const CompileResult cached =
        compileClustered(suite.front(), machine, options);
    ASSERT_TRUE(cached.success);
    EXPECT_GT(cached.ctxMisses, 0);
    EXPECT_GT(cached.mrtWordScans, 0);

    options.incremental = false;
    const CompileResult scratch =
        compileClustered(suite.front(), machine, options);
    ASSERT_TRUE(scratch.success);
    EXPECT_EQ(scratch.ctxHits, 0);
    EXPECT_EQ(scratch.ctxMisses, 0);
    EXPECT_EQ(scratch.mrtWordScans, 0);
}

} // namespace
} // namespace cams
