/**
 * @file
 * Robustness tests of the hardened pipeline: fault injection drives
 * the driver into its degradation ladder, timeouts and disabled
 * fallbacks produce classified failures, and a deterministic mini
 * fuzz sweep checks the global contract -- every compile ends in a
 * verified schedule or a classified failure, never a crash.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "machine/configs.hh"
#include "pipeline/batch.hh"
#include "pipeline/driver.hh"
#include "sched/verifier.hh"
#include "support/fault.hh"
#include "workload/generator.hh"

namespace cams
{
namespace
{

/** Injector whose only non-zero site is scheduler-slot denial. */
std::shared_ptr<FaultInjector>
denyAllSlots()
{
    FaultConfig config;
    config.probability[int(FaultSite::SchedulerSlotDeny)] = 1.0;
    return std::make_shared<FaultInjector>(config);
}

Dfg
loopOfSize(int min_nodes, int max_nodes, uint64_t seed)
{
    GeneratorParams params;
    params.minNodes = min_nodes;
    params.maxNodes = max_nodes;
    return generateLoop(seed, params, "stress");
}

TEST(Stress, SchedulerDenialDegradesToSingleCluster)
{
    // Denying every slot starves the whole primary II search; the
    // loop is too big for the exhaustive rung, so the single-cluster
    // serializer must rescue the compile with a verified schedule.
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const Dfg loop = loopOfSize(12, 24, 11);
    ASSERT_GT(loop.numNodes(), 8);

    CompileOptions options;
    options.faults = denyAllSlots();
    const CompileResult result =
        compileClustered(loop, machine, options);

    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.degraded, DegradeLevel::SingleCluster);
    EXPECT_EQ(result.failure, FailureKind::None);
    EXPECT_GT(result.faultTrips, 0);

    std::string why;
    EXPECT_TRUE(verifySchedule(result.loop, ResourceModel(machine),
                               result.schedule, &why))
        << why;
    // Serialized on cluster 0: no inter-cluster copies remain.
    EXPECT_EQ(result.copies, 0);
}

TEST(Stress, SmallLoopFallsBackToExhaustiveAssign)
{
    // Same denial, but a loop small enough for rung 1: exhaustive
    // partition enumeration (which runs injection-free) must rescue
    // it before the single-cluster serializer is reached.
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const Dfg loop = loopOfSize(3, 6, 5);
    ASSERT_LE(loop.numNodes(), 8);

    CompileOptions options;
    options.faults = denyAllSlots();
    const CompileResult result =
        compileClustered(loop, machine, options);

    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.degraded, DegradeLevel::ExhaustiveAssign);
    EXPECT_EQ(result.failure, FailureKind::None);
    EXPECT_GT(result.faultTrips, 0);

    std::string why;
    EXPECT_TRUE(verifySchedule(result.loop, ResourceModel(machine),
                               result.schedule, &why))
        << why;
}

TEST(Stress, AssignmentFaultsStayClassified)
{
    // Eviction storms and bus exhaustion at coin-flip rates, on a
    // machine with a starved interconnect: whatever happens, each
    // outcome is a verified schedule or a classified failure.
    const MachineDesc machine = busedGpMachine(2, 1, 1);
    const ResourceModel model(machine);
    FaultConfig config;
    config.probability[int(FaultSite::AssignEvictionStorm)] = 0.5;
    config.probability[int(FaultSite::RouterBusExhaustion)] = 0.5;

    for (uint64_t seed = 1; seed <= 20; ++seed) {
        config.seed = seed;
        CompileOptions options;
        options.faults = std::make_shared<FaultInjector>(config);
        const Dfg loop = loopOfSize(2, 32, seed);
        const CompileResult result =
            compileClustered(loop, machine, options);
        if (result.success) {
            std::string why;
            EXPECT_TRUE(verifySchedule(result.loop, model,
                                       result.schedule, &why))
                << "seed " << seed << ": " << why;
            EXPECT_EQ(result.failure, FailureKind::None);
        } else {
            EXPECT_NE(result.failure, FailureKind::None)
                << "seed " << seed;
            EXPECT_FALSE(result.failureDetail.empty());
        }
    }
}

TEST(Stress, ExpiredBudgetClassifiesAsTimeout)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const Dfg loop = loopOfSize(8, 16, 3);

    CompileOptions options;
    options.timeBudgetMs = 1e-6; // expired before the first attempt
    options.fallback = false;
    const CompileResult bare =
        compileClustered(loop, machine, options);
    EXPECT_FALSE(bare.success);
    EXPECT_EQ(bare.failure, FailureKind::Timeout);
    EXPECT_EQ(bare.attempts, 0);

    // The single-cluster rung runs even after a timeout: recovering
    // the compile beats reporting it.
    options.fallback = true;
    const CompileResult rescued =
        compileClustered(loop, machine, options);
    ASSERT_TRUE(rescued.success);
    EXPECT_EQ(rescued.degraded, DegradeLevel::SingleCluster);
}

TEST(Stress, FallbackDisabledKeepsTheClassifiedFailure)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const Dfg loop = loopOfSize(12, 24, 11);

    CompileOptions options;
    options.faults = denyAllSlots();
    options.fallback = false;
    const CompileResult result =
        compileClustered(loop, machine, options);

    EXPECT_FALSE(result.success);
    EXPECT_NE(result.failure, FailureKind::None);
    const int limit = result.mii.mii * 4 + options.iiSlack;
    EXPECT_EQ(result.finalIiTried, limit);
    EXPECT_GT(result.faultTrips, 0);
}

TEST(Stress, IncompatibleMachineIsClassifiedNotFatal)
{
    // Two memory-only clusters cannot execute an FP add. The direct
    // assigner cams_fatals on this (a caller bug there); the driver
    // classifies it so a batch over arbitrary inputs never dies.
    MachineDesc machine;
    machine.name = "mem-only";
    machine.interconnect = InterconnectKind::Bus;
    machine.numBuses = 1;
    ClusterDesc mem;
    mem.fsUnits[static_cast<int>(FuClass::Memory)] = 1;
    machine.clusters = {mem, mem};
    machine.validate();

    const Dfg loop = DfgBuilder("fp-loop")
                         .op("ld", Opcode::Load)
                         .op("acc", Opcode::FpAdd)
                         .flow("ld", "acc")
                         .carried("acc", "ld", 1)
                         .build();

    const CompileResult result = compileClustered(loop, machine);
    EXPECT_FALSE(result.success);
    EXPECT_EQ(result.failure, FailureKind::InternalInvariant);
    EXPECT_NE(result.failureDetail.find("cannot execute"),
              std::string::npos)
        << result.failureDetail;
}

TEST(Stress, FaultInjectionIsDeterministic)
{
    // Same seeds in, bit-identical outcomes out: a failing fuzz job
    // must reproduce exactly.
    const MachineDesc machine = busedGpMachine(2, 1, 1);
    auto sweep = [&]() {
        std::vector<CompileResult> results;
        for (uint64_t seed = 1; seed <= 12; ++seed) {
            CompileOptions options;
            options.faults = std::make_shared<FaultInjector>(
                FaultConfig::uniform(0.3, seed));
            results.push_back(compileClustered(
                loopOfSize(2, 24, seed * 97), machine, options));
        }
        return results;
    };
    const std::vector<CompileResult> first = sweep();
    const std::vector<CompileResult> second = sweep();
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].success, second[i].success) << i;
        EXPECT_EQ(first[i].ii, second[i].ii) << i;
        EXPECT_EQ(first[i].failure, second[i].failure) << i;
        EXPECT_EQ(first[i].degraded, second[i].degraded) << i;
        EXPECT_EQ(first[i].faultTrips, second[i].faultTrips) << i;
        EXPECT_EQ(first[i].attempts, second[i].attempts) << i;
    }
}

TEST(Stress, BatchAggregatesFailureTaxonomy)
{
    // Mixed batch: healthy jobs, a guaranteed degradation, and a
    // guaranteed classified failure. The stats must add up.
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const Dfg healthy = loopOfSize(4, 10, 21);
    const Dfg big = loopOfSize(12, 24, 11);

    std::vector<CompileJob> jobs(3);
    jobs[0].loop = &healthy;
    jobs[0].machine = &machine;
    jobs[0].clustered = true;

    jobs[1].loop = &big; // denial + ladder -> degraded success
    jobs[1].machine = &machine;
    jobs[1].clustered = true;
    jobs[1].options.faults = denyAllSlots();

    jobs[2].loop = &big; // denial, no ladder -> classified failure
    jobs[2].machine = &machine;
    jobs[2].clustered = true;
    jobs[2].options.faults = denyAllSlots();
    jobs[2].options.fallback = false;

    const BatchOutcome outcome = BatchRunner::run(jobs, 2);
    const BatchStats &stats = outcome.stats;
    EXPECT_EQ(stats.jobs, 3);
    EXPECT_EQ(stats.succeeded, 2);
    EXPECT_EQ(stats.failed, 1);
    EXPECT_EQ(stats.degraded, 1);
    EXPECT_EQ(stats.capturedExceptions, 0);
    EXPECT_GT(stats.faultTrips, 0);

    long classified = 0;
    for (int kind = 0; kind < numFailureKinds; ++kind)
        classified += stats.failuresByKind[kind];
    EXPECT_EQ(classified, stats.failed);
    EXPECT_EQ(stats.failuresByKind[int(FailureKind::None)], 0);

    // The JSON report carries the taxonomy for BENCH_stress.json.
    const std::string json = stats.toJson();
    EXPECT_NE(json.find("\"failure_kinds\""), std::string::npos);
    EXPECT_NE(json.find("\"degraded\":1"), std::string::npos);
}

TEST(Stress, BatchDeadlineAppliesToJobsWithoutTheirOwn)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const Dfg loop = loopOfSize(8, 16, 3);

    std::vector<CompileJob> jobs(2);
    jobs[0].loop = &loop; // inherits the batch deadline
    jobs[0].machine = &machine;
    jobs[0].clustered = true;
    jobs[0].options.fallback = false;

    jobs[1].loop = &loop; // its own generous budget wins
    jobs[1].machine = &machine;
    jobs[1].clustered = true;
    jobs[1].options.timeBudgetMs = 60000.0;

    const BatchOutcome outcome = BatchRunner::run(jobs, 1, 1e-6);
    EXPECT_FALSE(outcome.results[0].success);
    EXPECT_EQ(outcome.results[0].failure, FailureKind::Timeout);
    EXPECT_TRUE(outcome.results[1].success);
    EXPECT_EQ(outcome.results[1].degraded, DegradeLevel::None);
}

} // namespace
} // namespace cams
