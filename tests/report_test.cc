/**
 * @file
 * Tests for the experiment runner and report rendering.
 */

#include <gtest/gtest.h>

#include "machine/configs.hh"
#include "report/deviation.hh"
#include "report/interconnect.hh"
#include "report/table.hh"
#include "workload/kernels.hh"

namespace cams
{
namespace
{

TEST(DeviationSeries, Percentages)
{
    DeviationSeries series;
    series.label = "s";
    for (int i = 0; i < 8; ++i)
        series.deviations.add(0);
    series.deviations.add(1);
    series.failures = 1;
    EXPECT_EQ(series.loops(), 10);
    EXPECT_DOUBLE_EQ(series.percentAt(0), 80.0);
    EXPECT_DOUBLE_EQ(series.percentAtMost(1), 90.0);
}

TEST(Runner, KernelsOnTwoClusters)
{
    const auto suite = allKernels();
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const auto baseline =
        unifiedBaseline(suite, machine.unifiedEquivalent());
    ASSERT_EQ(baseline.size(), suite.size());
    for (int ii : baseline)
        EXPECT_GE(ii, 1);

    const DeviationSeries series = runClusteredSeries(
        suite, machine, baseline, CompileOptions{}, "kernels");
    EXPECT_EQ(series.loops(), static_cast<int>(suite.size()));
    EXPECT_EQ(series.failures, 0);
    // All kernels match the unified II on this machine.
    EXPECT_DOUBLE_EQ(series.percentAt(0), 100.0);
}

TEST(TextTable, AlignedRendering)
{
    TextTable table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "23"});
    const std::string text = table.render();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("longer"), std::string::npos);
    EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(TextTable, RejectsWrongWidth)
{
    TextTable table({"a", "b"});
    EXPECT_DEATH({ table.addRow({"only-one"}); }, "row width");
}

TEST(Figure, CsvRowsPerDeviationValue)
{
    DeviationSeries series;
    series.label = "s";
    series.deviations.add(0, 5);
    series.deviations.add(2, 1);
    series.failures = 2;
    const std::string csv = renderDeviationCsv({series});
    EXPECT_NE(csv.find("series,deviation,count,percent"),
              std::string::npos);
    EXPECT_NE(csv.find("s,0,5,62.500"), std::string::npos);
    EXPECT_NE(csv.find("s,2,1,"), std::string::npos);
    EXPECT_NE(csv.find("s,failed,2,25.000"), std::string::npos);
}

TEST(Interconnect, UnifiedMachineHasNoTraffic)
{
    const MachineDesc machine = unifiedGpMachine(8);
    const ResourceModel model(machine);
    const CompileResult result =
        compileUnified(kernelHydro(), machine);
    ASSERT_TRUE(result.success);
    const InterconnectStats stats = computeInterconnectStats(
        result.loop, result.schedule, model);
    EXPECT_EQ(stats.copies, 0);
    EXPECT_EQ(stats.busUtilization, 0.0);
    EXPECT_EQ(stats.readPortUtilization, 0.0);
}

TEST(Interconnect, CopiesShowUpOnTheBus)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const ResourceModel model(machine);
    const CompileResult result =
        compileClustered(kernelFir4(), machine);
    ASSERT_TRUE(result.success);
    ASSERT_GT(result.copies, 0);
    const InterconnectStats stats = computeInterconnectStats(
        result.loop, result.schedule, model);
    EXPECT_EQ(stats.copies, result.copies);
    EXPECT_GT(stats.busUtilization, 0.0);
    EXPECT_LE(stats.busUtilization, 1.0);
    // Every broadcast copy uses one bus slot: utilization is exactly
    // copies / (buses * II).
    EXPECT_DOUBLE_EQ(stats.busUtilization,
                     static_cast<double>(result.copies) /
                         (2.0 * result.ii));
    EXPECT_GT(stats.readPortUtilization, 0.0);
    EXPECT_GT(stats.writePortUtilization, 0.0);
}

TEST(Interconnect, GridReportsPerLink)
{
    const MachineDesc grid = gridMachine();
    const ResourceModel model(grid);
    const CompileResult result =
        compileClustered(kernelStateEquation(), grid);
    ASSERT_TRUE(result.success);
    const InterconnectStats stats = computeInterconnectStats(
        result.loop, result.schedule, model);
    ASSERT_EQ(stats.linkUtilization.size(), grid.links.size());
    double total = 0.0;
    for (double link : stats.linkUtilization) {
        EXPECT_GE(link, 0.0);
        EXPECT_LE(link, 1.0);
        total += link;
    }
    if (result.copies > 0) {
        EXPECT_GT(total, 0.0);
    }
}

TEST(Figure, RenderContainsSeriesAndBuckets)
{
    DeviationSeries series;
    series.label = "heuristic-iterative";
    series.deviations.add(0, 97);
    series.deviations.add(1, 2);
    series.deviations.add(5, 1);
    const std::string text =
        renderDeviationFigure("Figure 12", {series});
    EXPECT_NE(text.find("Figure 12"), std::string::npos);
    EXPECT_NE(text.find("heuristic-iterative"), std::string::npos);
    EXPECT_NE(text.find("97.0"), std::string::npos);
    EXPECT_NE(text.find("x=0"), std::string::npos);
}

} // namespace
} // namespace cams
