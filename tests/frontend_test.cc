/**
 * @file
 * Tests for the loop-source frontend: the generated graphs must
 * match the hand-translated kernels structurally (node/edge counts,
 * recurrences, RecMII) and compile + simulate end to end.
 */

#include <gtest/gtest.h>

#include "frontend/parser.hh"
#include "graph/recmii.hh"
#include "graph/scc.hh"
#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "sim/compare.hh"

namespace cams
{
namespace
{

Dfg
mustParse(const std::string &source)
{
    Dfg graph;
    std::string error;
    EXPECT_TRUE(parseLoopSource(source, graph, error)) << error;
    return graph;
}

TEST(Frontend, HydroMatchesHandCoding)
{
    const Dfg graph = mustParse(R"(
        loop hydro {
            x[i] = q + y[i] * (r * z[i+10] + t * z[i+11]);
        }
    )");
    EXPECT_EQ(graph.name(), "hydro");
    // 3 loads, 3 multiplies, 2 adds, 1 store, counter, branch.
    EXPECT_EQ(graph.numNodes(), 11);
    EXPECT_EQ(findSccs(graph).numNonTrivial(), 0);
    EXPECT_EQ(recMii(graph), 1);
}

TEST(Frontend, AccumulationBecomesSelfRecurrence)
{
    const Dfg graph = mustParse(R"(
        loop dot { q += z[i] * x[i]; }
    )");
    // 2 loads, fmul, fadd(acc), counter, branch.
    EXPECT_EQ(graph.numNodes(), 6);
    const SccInfo sccs = findSccs(graph);
    EXPECT_EQ(sccs.numNonTrivial(), 1);
    EXPECT_EQ(recMii(graph), 1); // fadd self-loop, latency 1
}

TEST(Frontend, StoreToLoadForwardingMakesRecurrence)
{
    const Dfg graph = mustParse(R"(
        loop tridiag { x[i] = z[i] * (y[i] - x[i-1]); }
    )");
    // No load of x: the read forwards from the stored value.
    int loads = 0;
    for (const DfgNode &node : graph.nodes()) {
        if (node.op == Opcode::Load)
            ++loads;
    }
    EXPECT_EQ(loads, 2); // z and y only
    EXPECT_EQ(recMii(graph), 4); // fadd + fmul, distance 1
}

TEST(Frontend, DeeperCarryDistance)
{
    const Dfg graph = mustParse(R"(
        loop second_order { x[i] = x[i-2] + y[i]; }
    )");
    // (1 + 1?) -- a single fadd with a distance-2 self edge:
    // RecMII = ceil(1/2) = 1.
    EXPECT_EQ(recMii(graph), 1);
    bool found = false;
    for (const DfgEdge &edge : graph.edges()) {
        if (edge.distance == 2)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Frontend, FortranTypingPicksIntegerOps)
{
    const Dfg graph = mustParse(R"(
        loop crc { k = (k << 3) + m[i]; }
    )");
    int shifts = 0;
    int int_adds = 0;
    for (const DfgNode &node : graph.nodes()) {
        if (node.op == Opcode::IntShift)
            ++shifts;
        if (node.op == Opcode::IntAlu && node.name != "cnt")
            ++int_adds;
    }
    EXPECT_EQ(shifts, 1);
    EXPECT_EQ(int_adds, 1);
    EXPECT_EQ(recMii(graph), 2); // shift -> add -> (d1) shift
}

TEST(Frontend, InvariantsCostNothing)
{
    const Dfg graph = mustParse(R"(
        loop axpy { y[i] = a * x[i] + y0; }
    )");
    // Load, fmul (a*x has one real input), fadd (y0 invariant... the
    // add folds away since y0 is invariant? No: a*x is computed, so
    // the add has one real input and stays), store, cnt, br.
    EXPECT_EQ(graph.numNodes(), 6);
}

TEST(Frontend, RepeatedElementReadsShareOneLoad)
{
    const Dfg graph = mustParse(R"(
        loop square { y[i] = x[i] * x[i] + x[i]; }
    )");
    int loads = 0;
    for (const DfgNode &node : graph.nodes()) {
        if (node.op == Opcode::Load)
            ++loads;
    }
    EXPECT_EQ(loads, 1);
}

TEST(Frontend, SqrtAndDivide)
{
    const Dfg graph = mustParse(R"(
        loop norm { y[i] = x[i] / sqrt(s + x[i] * x[i]); }
    )");
    bool has_sqrt = false;
    bool has_div = false;
    for (const DfgNode &node : graph.nodes()) {
        has_sqrt |= node.op == Opcode::FpSqrt;
        has_div |= node.op == Opcode::FpDiv;
    }
    EXPECT_TRUE(has_sqrt);
    EXPECT_TRUE(has_div);
}

TEST(Frontend, MultipleStatementsChainValues)
{
    const Dfg graph = mustParse(R"(
        loop two {
            t = x[i] - x[i-1];
            y[i] = t * t;
            s += t;
        }
    )");
    // t is a scalar def consumed twice by the multiply and the acc.
    EXPECT_EQ(findSccs(graph).numNonTrivial(), 1); // s accumulation
    std::string why;
    EXPECT_TRUE(graph.wellFormed(&why)) << why;
}

TEST(Frontend, IfConversionPredicatesStores)
{
    const Dfg graph = mustParse(R"(
        loop clamp {
            if (x[i] > hi) y[i] = x[i] * scale;
        }
    )");
    // A compare node guards the store: ld, cmp, fmul, st, cnt, br.
    EXPECT_EQ(graph.numNodes(), 6);
    NodeId store = invalidNode;
    NodeId cmp = invalidNode;
    for (const DfgNode &node : graph.nodes()) {
        if (node.op == Opcode::Store)
            store = node.id;
        if (node.name.rfind("cmp", 0) == 0)
            cmp = node.id;
    }
    ASSERT_NE(store, invalidNode);
    ASSERT_NE(cmp, invalidNode);
    // The predicate feeds the store.
    const auto preds = graph.predecessors(store);
    EXPECT_NE(std::find(preds.begin(), preds.end(), cmp), preds.end());
}

TEST(Frontend, GuardedScalarBecomesSelectRecurrence)
{
    // if-converted max reduction: m = max(m, x[i]).
    const Dfg graph = mustParse(R"(
        loop maxred {
            if (x[i] > m) m = x[i];
        }
    )");
    // The select merges the old m with the new value: a recurrence.
    EXPECT_EQ(findSccs(graph).numNonTrivial(), 1);
    bool has_select = false;
    for (const DfgNode &node : graph.nodes())
        has_select |= node.name == "sel_m";
    EXPECT_TRUE(has_select);
}

TEST(Frontend, ComparisonOperatorsParse)
{
    for (const char *relop : {"<", ">", "<=", ">=", "==", "!="}) {
        const std::string source = std::string("loop t { if (x[i] ") +
                                   relop + " 0) y[i] = x[i]; }";
        Dfg graph;
        std::string error;
        EXPECT_TRUE(parseLoopSource(source, graph, error))
            << relop << ": " << error;
    }
}

TEST(Frontend, PredicatedLoopsCompileAndSimulate)
{
    const char *sources[] = {
        "loop a { if (x[i] > t) s += x[i]; }",
        "loop b { if (x[i] != m) y[i] = x[i] - m; }",
        "loop c { t = x[i] - x[i-1]; if (t > 0) s += t; }",
    };
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    for (const char *source : sources) {
        const Dfg loop = mustParse(source);
        const CompileResult result = compileClustered(loop, machine);
        ASSERT_TRUE(result.success) << source;
        const auto report = checkEquivalence(loop, result.loop,
                                             result.schedule, machine);
        EXPECT_TRUE(report.equivalent)
            << source << ": "
            << (report.mismatches.empty() ? "" : report.mismatches[0]);
    }
}

TEST(Frontend, GuardRejections)
{
    Dfg graph;
    std::string error;
    // Loop-invariant condition.
    EXPECT_FALSE(parseLoopSource("loop x { if (a > b) y[i] = 1; }",
                                 graph, error));
    // Nested guards.
    EXPECT_FALSE(parseLoopSource(
        "loop x { if (x[i] > 0) if (x[i] < 9) y[i] = 1; }", graph,
        error));
    // Missing comparison.
    EXPECT_FALSE(parseLoopSource("loop x { if (x[i]) y[i] = 1; }",
                                 graph, error));
}

TEST(Frontend, Rejections)
{
    Dfg graph;
    std::string error;
    EXPECT_FALSE(parseLoopSource("", graph, error));
    EXPECT_FALSE(parseLoopSource("loop x { }", graph, error));
    EXPECT_FALSE(parseLoopSource("loop x { y[i+1] = 2; }", graph,
                                 error)); // store off [i]
    EXPECT_FALSE(parseLoopSource(
        "loop x { y[i] = 1; y[i] = 2; }", graph, error)); // double store
    EXPECT_FALSE(parseLoopSource(
        "loop x { y[i] = y[i+1]; }", graph, error)); // future element
    EXPECT_FALSE(parseLoopSource(
        "loop x { y[i] = y[i] + 1; }", graph,
        error)); // reads own store before it happens
    EXPECT_FALSE(parseLoopSource("loop x { y[i] = (1; }", graph,
                                 error)); // syntax
    EXPECT_FALSE(parseLoopSource("loop x { y[i] = 1; } extra", graph,
                                 error)); // trailing input
    EXPECT_NE(error.find("line"), std::string::npos);
}

TEST(Frontend, CompilesAndSimulatesEndToEnd)
{
    const char *sources[] = {
        "loop a { x[i] = z[i] * (y[i] - x[i-1]); }",
        "loop b { q += z[i] * x[i]; }",
        "loop c { y[i] = a * x[i] + b * x[i-1] + c * x[i-2]; }",
        "loop d { s += (x[i] - m) * (x[i] - m); }",
    };
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    for (const char *source : sources) {
        const Dfg loop = mustParse(source);
        const CompileResult result = compileClustered(loop, machine);
        ASSERT_TRUE(result.success) << source;
        const auto report = checkEquivalence(loop, result.loop,
                                             result.schedule, machine);
        EXPECT_TRUE(report.equivalent)
            << source << ": "
            << (report.mismatches.empty() ? "" : report.mismatches[0]);
    }
}

} // namespace
} // namespace cams
