/**
 * @file
 * Tests of the lock-free bucketed MetricsRegistry: histogram edge
 * cases (0/1 samples, all-equal, bucket boundaries), percentile
 * accuracy against exact percentiles on random data (the documented
 * max relative error bound), windowed views, the fixed memory
 * ceiling across a million records, and concurrent recording.
 */

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/metrics.hh"

namespace
{

using cams::HistogramSummary;
using cams::MetricsRegistry;

/** Exact nearest-rank percentile on a sorted sample vector. */
double
exactPercentile(std::vector<double> sorted, double fraction)
{
    std::sort(sorted.begin(), sorted.end());
    const size_t rank = static_cast<size_t>(
        fraction * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[rank];
}

TEST(Metrics, EmptyRegistry)
{
    MetricsRegistry registry;
    EXPECT_TRUE(registry.empty());
    EXPECT_EQ(registry.counter("nothing"), 0);
    const HistogramSummary s = registry.histogram("nothing");
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.min, 0.0);
    EXPECT_EQ(s.max, 0.0);
    EXPECT_EQ(s.p50, 0.0);
    EXPECT_TRUE(registry.counterNames().empty());
    EXPECT_TRUE(registry.histogramNames().empty());
}

TEST(Metrics, SingleSample)
{
    MetricsRegistry registry;
    registry.record("lat", 42.5);
    const HistogramSummary s = registry.histogram("lat");
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.min, 42.5);
    EXPECT_EQ(s.max, 42.5);
    EXPECT_EQ(s.mean, 42.5);
    // One sample: every percentile is that sample (clamping into the
    // exact [min, max] collapses the bucket bound).
    EXPECT_EQ(s.p50, 42.5);
    EXPECT_EQ(s.p90, 42.5);
    EXPECT_EQ(s.p99, 42.5);
}

TEST(Metrics, AllEqualSamples)
{
    MetricsRegistry registry;
    for (int i = 0; i < 1000; ++i)
        registry.record("lat", 7.3);
    const HistogramSummary s = registry.histogram("lat");
    EXPECT_EQ(s.count, 1000u);
    EXPECT_EQ(s.min, 7.3);
    EXPECT_EQ(s.max, 7.3);
    EXPECT_NEAR(s.mean, 7.3, 1e-9);
    EXPECT_EQ(s.p50, 7.3);
    EXPECT_EQ(s.p90, 7.3);
    EXPECT_EQ(s.p99, 7.3);
}

TEST(Metrics, BucketBoundaryValuesAreExact)
{
    // Integers up to 2^subBucketBits (and every power of two) sit on
    // bucket boundaries, so their percentiles reproduce exactly.
    MetricsRegistry registry;
    std::vector<double> values;
    for (int i = 1; i <= 32; ++i)
        values.push_back(static_cast<double>(i));
    for (int e = 5; e <= 20; ++e)
        values.push_back(std::ldexp(1.0, e));
    for (const double v : values)
        registry.record("b", v);
    const HistogramSummary s = registry.histogram("b");
    EXPECT_EQ(s.count, values.size());
    EXPECT_EQ(s.p50, exactPercentile(values, 0.50));
    EXPECT_EQ(s.p90, exactPercentile(values, 0.90));
    EXPECT_EQ(s.p99, exactPercentile(values, 0.99));
}

TEST(Metrics, LegacySmallIntegerPercentiles)
{
    // The pre-bucketed registry's behavior on 1..10, preserved.
    MetricsRegistry registry;
    for (int i = 1; i <= 10; ++i)
        registry.record("slack", static_cast<double>(i));
    const HistogramSummary s = registry.histogram("slack");
    EXPECT_EQ(s.count, 10u);
    EXPECT_EQ(s.min, 1.0);
    EXPECT_EQ(s.max, 10.0);
    EXPECT_NEAR(s.mean, 5.5, 1e-9);
    EXPECT_EQ(s.p50, 6.0);
    EXPECT_EQ(s.p90, 9.0);
}

TEST(Metrics, ZeroAndNegativeSamplesLandInUnderflow)
{
    MetricsRegistry registry;
    registry.record("d", 0.0);
    registry.record("d", -5.0);
    registry.record("d", 3.0);
    const HistogramSummary s = registry.histogram("d");
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.min, -5.0);
    EXPECT_EQ(s.max, 3.0);
    // Percentiles stay inside the exact [min, max].
    EXPECT_GE(s.p50, s.min);
    EXPECT_LE(s.p99, s.max);
}

TEST(Metrics, PercentileAccuracyOnRandomData)
{
    // The documented bound: a percentile is under-reported by at
    // most maxRelativeError (= 2^-subBucketBits) of the true value,
    // and never over-reported past the next sub-bucket boundary.
    std::mt19937_64 rng(20260809);
    std::lognormal_distribution<double> dist(3.0, 1.5);
    MetricsRegistry registry;
    std::vector<double> values;
    values.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
        const double v = dist(rng);
        values.push_back(v);
        registry.record("lat", v);
    }
    const HistogramSummary s = registry.histogram("lat");
    ASSERT_EQ(s.count, values.size());
    const double bound = MetricsRegistry::maxRelativeError;
    EXPECT_EQ(bound, 0.03125);
    for (const auto &[got, frac] :
         {std::pair{s.p50, 0.50}, {s.p90, 0.90}, {s.p99, 0.99}}) {
        const double exact = exactPercentile(values, frac);
        // Lower-bound representative: got <= exact always, and the
        // true value is less than one sub-bucket width above.
        EXPECT_LE(got, exact + 1e-9) << "fraction " << frac;
        EXPECT_GE(got, exact * (1.0 - bound) - 1e-9)
            << "fraction " << frac;
    }
}

TEST(Metrics, CountersStripedAndWindowed)
{
    MetricsRegistry registry(/*windowSeconds=*/3600.0);
    registry.add("reqs");
    registry.add("reqs", 4);
    EXPECT_EQ(registry.counter("reqs"), 5);
    // No rotation happened, so the live window holds everything.
    EXPECT_EQ(registry.counterWindow("reqs", 60.0), 5);
    registry.rotate();
    registry.add("reqs", 7);
    // Live window only vs live + newest closed window.
    EXPECT_EQ(registry.counterWindow("reqs", 0.0), 7);
    EXPECT_EQ(registry.counterWindow("reqs", 3600.0), 12);
    EXPECT_EQ(registry.counter("reqs"), 12);
}

TEST(Metrics, HistogramWindows)
{
    MetricsRegistry registry(/*windowSeconds=*/3600.0,
                             /*windowCount=*/4);
    for (int i = 1; i <= 4; ++i)
        registry.record("lat", 100.0 * i);
    registry.rotate();
    for (int i = 1; i <= 4; ++i)
        registry.record("lat", 1.0 * i);
    // Live-only view sees just the small samples.
    const HistogramSummary live = registry.histogramWindow("lat", 0.0);
    EXPECT_EQ(live.count, 4u);
    EXPECT_EQ(live.max, 4.0);
    // One closed window back sees both batches.
    const HistogramSummary both =
        registry.histogramWindow("lat", 3600.0);
    EXPECT_EQ(both.count, 8u);
    EXPECT_EQ(both.min, 1.0);
    EXPECT_EQ(both.max, 400.0);
    // Cumulative view unaffected by rotation.
    EXPECT_EQ(registry.histogram("lat").count, 8u);
}

TEST(Metrics, WindowRingIsBounded)
{
    MetricsRegistry registry(/*windowSeconds=*/3600.0,
                             /*windowCount=*/3);
    registry.record("lat", 1.0);
    registry.add("c", 1);
    const size_t baseline = [&] {
        // Populate the ring fully first so the slab pool reaches its
        // ceiling, then measure.
        for (int i = 0; i < 10; ++i)
            registry.rotate();
        return registry.footprintBytes();
    }();
    for (int i = 0; i < 100; ++i) {
        registry.record("lat", static_cast<double>(i));
        registry.rotate();
    }
    EXPECT_EQ(registry.footprintBytes(), baseline);
}

TEST(Metrics, MemoryIsSteadyAcrossMillionRecords)
{
    // The satellite regression: the old registry kept every sample
    // in a vector; the bucketed one must not grow at all.
    MetricsRegistry registry;
    for (int i = 0; i < 1000; ++i)
        registry.record("lat", static_cast<double>(i % 97));
    registry.add("reqs", 1000);
    const size_t baseline = registry.footprintBytes();
    ASSERT_GT(baseline, 0u);
    for (int i = 0; i < 1000000; ++i)
        registry.record("lat", static_cast<double>(i % 1009));
    registry.add("reqs", 1000000);
    EXPECT_EQ(registry.footprintBytes(), baseline);
    EXPECT_EQ(registry.histogram("lat").count, 1001000u);
    EXPECT_EQ(registry.counter("reqs"), 1001000);
}

TEST(Metrics, InternedIdsMatchStringPath)
{
    MetricsRegistry registry;
    const MetricsRegistry::MetricId c = registry.counterId("hits");
    const MetricsRegistry::MetricId h = registry.histogramId("ms");
    EXPECT_EQ(registry.counterId("hits"), c); // idempotent
    EXPECT_EQ(registry.histogramId("ms"), h);
    registry.add(c, 3);
    registry.add("hits", 2);
    EXPECT_EQ(registry.counter("hits"), 5);
    registry.record(h, 10.0);
    registry.record("ms", 20.0);
    EXPECT_EQ(registry.histogram("ms").count, 2u);
}

TEST(Metrics, ConcurrentRecording)
{
    MetricsRegistry registry;
    const MetricsRegistry::MetricId counter =
        registry.counterId("ops");
    const MetricsRegistry::MetricId hist = registry.histogramId("ms");
    constexpr int threads = 8;
    constexpr int perThread = 20000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (int i = 0; i < perThread; ++i) {
                registry.add(counter);
                registry.record(
                    hist, static_cast<double>((t * perThread + i) %
                                              500) + 1.0);
            }
        });
    }
    for (std::thread &worker : pool)
        worker.join();
    EXPECT_EQ(registry.counter("ops"),
              static_cast<int64_t>(threads) * perThread);
    const HistogramSummary s = registry.histogram("ms");
    EXPECT_EQ(s.count,
              static_cast<uint64_t>(threads) * perThread);
    EXPECT_EQ(s.min, 1.0);
    EXPECT_EQ(s.max, 500.0);
}

TEST(Metrics, ToJsonShape)
{
    MetricsRegistry registry;
    registry.add("b_counter", 2);
    registry.add("a_counter", 1);
    registry.record("lat", 5.0);
    const std::string json = registry.toJson();
    // Names sorted, both sections present, summary keys in order.
    EXPECT_NE(json.find("\"counters\":{\"a_counter\":1,"
                        "\"b_counter\":2}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"lat\":{\"count\":1,\"min\":5,\"mean\":5,"
                        "\"max\":5,\"p50\":5,\"p90\":5,\"p99\":5}"),
              std::string::npos)
        << json;
}

} // namespace
