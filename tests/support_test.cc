/**
 * @file
 * Unit tests for the support substrate: RNG determinism and
 * distribution sanity, statistics accumulators, string utilities.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "support/fault.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "support/stats.hh"
#include "support/str.hh"
#include "support/threadpool.hh"

namespace cams
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const int v = rng.uniformInt(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIntSingleValue)
{
    Rng rng(7);
    EXPECT_EQ(rng.uniformInt(4, 4), 4);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(11);
    std::vector<bool> seen(6, false);
    for (int i = 0; i < 500; ++i)
        seen[rng.uniformInt(0, 5)] = true;
    for (bool hit : seen)
        EXPECT_TRUE(hit);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, WeightedIndexRespectsZeroWeights)
{
    Rng rng(9);
    const std::vector<double> weights = {0.0, 1.0, 0.0};
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(rng.weightedIndex(weights), 1);
}

TEST(Rng, WeightedIndexRoughProportions)
{
    Rng rng(13);
    const std::vector<double> weights = {1.0, 3.0};
    int hits = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) {
        if (rng.weightedIndex(weights) == 1)
            ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / draws, 0.75, 0.03);
}

TEST(Rng, LognormalIntClamped)
{
    Rng rng(17);
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.lognormalInt(2.58, 0.75, 2, 161);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 161);
    }
}

TEST(Rng, LognormalIntMeanNearTarget)
{
    Rng rng(19);
    double sum = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        sum += rng.lognormalInt(2.58, 0.75, 2, 161);
    // exp(2.58 + 0.75^2/2) ~ 17.5.
    EXPECT_NEAR(sum / draws, 17.5, 1.5);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(23);
    std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
    auto copy = values;
    rng.shuffle(copy);
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, values);
}

TEST(RunningStat, Empty)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.mean(), 0.0);
    EXPECT_EQ(stat.min(), 0.0);
    EXPECT_EQ(stat.max(), 0.0);
}

TEST(RunningStat, Accumulates)
{
    RunningStat stat;
    stat.add(3.0);
    stat.add(-1.0);
    stat.add(4.0);
    EXPECT_EQ(stat.count(), 3u);
    EXPECT_DOUBLE_EQ(stat.min(), -1.0);
    EXPECT_DOUBLE_EQ(stat.max(), 4.0);
    EXPECT_DOUBLE_EQ(stat.mean(), 2.0);
    EXPECT_DOUBLE_EQ(stat.sum(), 6.0);
}

TEST(IntHistogram, CountsAndFractions)
{
    IntHistogram hist;
    hist.add(0, 3);
    hist.add(1);
    hist.add(5);
    EXPECT_EQ(hist.total(), 5u);
    EXPECT_EQ(hist.countAt(0), 3u);
    EXPECT_EQ(hist.countAt(2), 0u);
    EXPECT_EQ(hist.countAtMost(1), 4u);
    EXPECT_DOUBLE_EQ(hist.fractionAt(0), 0.6);
    EXPECT_DOUBLE_EQ(hist.fractionAtMost(1), 0.8);
    EXPECT_EQ(hist.minValue(), 0);
    EXPECT_EQ(hist.maxValue(), 5);
}

TEST(Str, SplitWhitespace)
{
    const auto tokens = splitWhitespace("  a\tbb   c \n");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0], "a");
    EXPECT_EQ(tokens[1], "bb");
    EXPECT_EQ(tokens[2], "c");
}

TEST(Str, SplitWhitespaceEmpty)
{
    EXPECT_TRUE(splitWhitespace("   ").empty());
    EXPECT_TRUE(splitWhitespace("").empty());
}

TEST(Str, SplitCharKeepsEmptyFields)
{
    const auto fields = splitChar("a,,b,", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "b");
    EXPECT_EQ(fields[3], "");
}

TEST(Str, Trim)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n"), "");
}

TEST(Str, ParseInt)
{
    int value = 0;
    EXPECT_TRUE(parseInt("123", value));
    EXPECT_EQ(value, 123);
    EXPECT_TRUE(parseInt("-7", value));
    EXPECT_EQ(value, -7);
    EXPECT_FALSE(parseInt("", value));
    EXPECT_FALSE(parseInt("12a", value));
    EXPECT_FALSE(parseInt("-", value));
    EXPECT_FALSE(parseInt("99999999999", value));
}

TEST(Str, FormatAndPad)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(pad("ab", 4), "  ab");
    EXPECT_EQ(pad("ab", -4), "ab  ");
    EXPECT_EQ(pad("abcdef", 4), "abcdef");
}

TEST(Str, StartsWith)
{
    EXPECT_TRUE(startsWith("lat=3", "lat="));
    EXPECT_FALSE(startsWith("la", "lat="));
}

TEST(Logging, ConcatFormatsAllArguments)
{
    EXPECT_EQ(detail::concat("x=", 3, " y=", 2.5), "x=3 y=2.5");
    EXPECT_EQ(detail::concat(), "");
}

TEST(Logging, AssertDeathOnFalse)
{
    EXPECT_DEATH({ cams_assert(1 == 2, "boom"); }, "assertion");
}

TEST(Logging, CheckPassesOnTrue)
{
    EXPECT_NO_THROW({ cams_check(1 + 1 == 2, "fine"); });
}

TEST(Logging, CheckThrowsRecoverableInternalError)
{
    // cams_check is the recoverable sibling of cams_assert: it throws
    // instead of aborting, with the condition, the message and the
    // source location in what().
    try {
        cams_check(1 == 2, "value was ", 42);
        FAIL() << "cams_check(false) did not throw";
    } catch (const InternalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
        EXPECT_NE(what.find("value was 42"), std::string::npos) << what;
        EXPECT_NE(what.find("support_test.cc"), std::string::npos)
            << what;
    }
}

TEST(Fault, NamesAreStable)
{
    EXPECT_STREQ(failureKindName(FailureKind::None), "none");
    EXPECT_STREQ(failureKindName(FailureKind::AssignLivelock),
                 "assign_livelock");
    EXPECT_STREQ(failureKindName(FailureKind::IiExhausted),
                 "ii_exhausted");
    EXPECT_STREQ(failureKindName(FailureKind::VerifierReject),
                 "verifier_reject");
    EXPECT_STREQ(failureKindName(FailureKind::Timeout), "timeout");
    EXPECT_STREQ(failureKindName(FailureKind::InternalInvariant),
                 "internal_invariant");
    EXPECT_STREQ(faultSiteName(FaultSite::AssignEvictionStorm),
                 "assign_eviction_storm");
    EXPECT_STREQ(faultSiteName(FaultSite::RouterBusExhaustion),
                 "router_bus_exhaustion");
    EXPECT_STREQ(faultSiteName(FaultSite::SchedulerSlotDeny),
                 "scheduler_slot_deny");
}

TEST(Fault, ZeroProbabilityNeverTripsOrDraws)
{
    FaultInjector injector; // default config: all sites at zero
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(injector.trip(FaultSite::AssignEvictionStorm));
        EXPECT_FALSE(injector.trip(FaultSite::RouterBusExhaustion));
    }
    EXPECT_EQ(injector.totalTrips(), 0);
    // Disabled sites draw no coins, so enabling one site later does
    // not perturb another site's stream.
    EXPECT_EQ(injector.draws(), 0);
}

TEST(Fault, CertainProbabilityAlwaysTrips)
{
    FaultInjector injector(FaultConfig::uniform(1.0));
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(injector.trip(FaultSite::SchedulerSlotDeny));
    EXPECT_EQ(injector.trips(FaultSite::SchedulerSlotDeny), 50);
    EXPECT_EQ(injector.totalTrips(), 50);
    EXPECT_EQ(injector.draws(), 50);
}

TEST(Fault, SameSeedSameTripSequence)
{
    FaultInjector a(FaultConfig::uniform(0.4, 99));
    FaultInjector b(FaultConfig::uniform(0.4, 99));
    for (int i = 0; i < 200; ++i) {
        const FaultSite site = FaultSite(i % numFaultSites);
        EXPECT_EQ(a.trip(site), b.trip(site)) << i;
    }
    EXPECT_EQ(a.totalTrips(), b.totalTrips());
}

TEST(Fault, PerSiteCountersSumToTotal)
{
    FaultInjector injector(FaultConfig::uniform(0.5, 7));
    for (int i = 0; i < 300; ++i)
        injector.trip(FaultSite(i % numFaultSites));
    long sum = 0;
    for (int site = 0; site < numFaultSites; ++site)
        sum += injector.trips(FaultSite(site));
    EXPECT_EQ(sum, injector.totalTrips());
    EXPECT_GT(injector.totalTrips(), 0);
    EXPECT_LT(injector.totalTrips(), 300);
}

TEST(ThreadPool, DestructionDrainsQueuedWork)
{
    // The destructor contract is "drain, then join": tasks still
    // queued when the pool dies must run, not vanish. The first task
    // naps so destruction begins with work genuinely queued behind a
    // busy worker.
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        pool.post([&] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
            ++ran;
        });
        for (int i = 0; i < 32; ++i)
            pool.post([&] { ++ran; });
        // No wait(): the destructor alone must finish the queue.
    }
    EXPECT_EQ(ran.load(), 33);
}

TEST(ThreadPool, DestructionAfterWaitIsIdempotent)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 8; ++i)
            pool.post([&] { ++ran; });
        pool.wait();
        EXPECT_EQ(ran.load(), 8);
    }
    EXPECT_EQ(ran.load(), 8);
}

} // namespace
} // namespace cams
