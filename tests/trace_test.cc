/**
 * @file
 * Tests of the observability layer: the trace sink's event model and
 * Chrome-JSON serialization, zero recording when disabled, scope
 * nesting across thread-pool workers, the selection cascade's
 * decision explanations, the metrics registry, and the always-on
 * per-phase timers of the compile pipeline.
 */

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

#include <gtest/gtest.h>

#include "assign/selector.hh"
#include "machine/configs.hh"
#include "pipeline/batch.hh"
#include "pipeline/driver.hh"
#include "support/metrics.hh"
#include "support/threadpool.hh"
#include "support/trace.hh"
#include "workload/kernels.hh"
#include "workload/suite.hh"

namespace cams
{
namespace
{

/**
 * Checks brace/bracket balance outside of string literals -- a cheap
 * well-formedness proxy that catches every unescaped quote or broken
 * nesting the serializer could produce.
 */
bool
balancedJson(const std::string &text)
{
    int braces = 0;
    int brackets = 0;
    bool in_string = false;
    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\')
                ++i; // skip the escaped character
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"':
            in_string = true;
            break;
          case '{':
            ++braces;
            break;
          case '}':
            --braces;
            break;
          case '[':
            ++brackets;
            break;
          case ']':
            --brackets;
            break;
          default:
            break;
        }
        if (braces < 0 || brackets < 0)
            return false;
    }
    return braces == 0 && brackets == 0 && !in_string;
}

TEST(TraceSink, DisabledConfigRecordsNothing)
{
    TraceSink sink(TraceLevel::Off);
    TraceConfig config{&sink, ""};
    EXPECT_FALSE(config.active(TraceLevel::Phase));
    EXPECT_FALSE(config.active(TraceLevel::Decision));
    {
        TraceScope scope(config, TraceLevel::Phase, "compile", "test");
        scope.arg("key", "value");
        EXPECT_FALSE(scope.active());
    }
    EXPECT_EQ(sink.eventCount(), 0u);

    // A null sink is the common "tracing off" shape.
    TraceConfig off;
    EXPECT_FALSE(off.active(TraceLevel::Phase));
    TraceScope scope(off, TraceLevel::Phase, "compile", "test");
    EXPECT_FALSE(scope.active());
}

TEST(TraceSink, PhaseLevelFiltersDecisionEvents)
{
    TraceSink sink(TraceLevel::Phase);
    TraceConfig config{&sink, ""};
    EXPECT_TRUE(config.active(TraceLevel::Phase));
    EXPECT_FALSE(config.active(TraceLevel::Decision));
    {
        TraceScope scope(config, TraceLevel::Decision, "decide",
                         "test");
        EXPECT_FALSE(scope.active());
    }
    EXPECT_EQ(sink.eventCount(), 0u);
    {
        TraceScope scope(config, TraceLevel::Phase, "phase", "test");
        EXPECT_TRUE(scope.active());
    }
    EXPECT_EQ(sink.eventCount(), 1u);
}

TEST(TraceSink, TagPrefixesScopeNames)
{
    TraceSink sink(TraceLevel::Phase);
    TraceConfig config{&sink, "c:loop_3"};
    {
        TraceScope scope(config, TraceLevel::Phase, "assign", "phase");
    }
    const std::vector<TraceEvent> events = sink.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "c:loop_3/assign");
    EXPECT_EQ(events[0].phase, 'X');
}

TEST(TraceSink, BoundedRingOverwritesOldestAndCountsDrops)
{
    TraceSink sink(TraceLevel::Phase, 4);
    EXPECT_EQ(sink.capacity(), 4u);
    for (int i = 0; i < 10; ++i)
        sink.instant("event_" + std::to_string(i), "test");

    EXPECT_EQ(sink.eventCount(), 4u);
    EXPECT_EQ(sink.droppedCount(), 6u);

    // The survivors are the newest four, still in recording order.
    const std::vector<TraceEvent> events = sink.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].name, "event_" + std::to_string(6 + i));
    EXPECT_TRUE(balancedJson(sink.toJson()));

    // An unbounded sink (the batch-run shape) never drops.
    TraceSink unbounded(TraceLevel::Phase, 0);
    for (int i = 0; i < 10; ++i)
        unbounded.instant("event", "test");
    EXPECT_EQ(unbounded.eventCount(), 10u);
    EXPECT_EQ(unbounded.droppedCount(), 0u);
}

TEST(TraceSink, JsonIsWellFormedWithHostileStrings)
{
    TraceSink sink(TraceLevel::Decision);
    sink.instant("quote\"back\\slash", "cat",
                 {{"new\nline", "tab\there"}, {"ctrl", "\x01"}});
    TraceConfig config{&sink, ""};
    {
        TraceScope scope(config, TraceLevel::Phase, "scope", "cat");
        scope.arg("k", "v");
    }
    const std::string json = sink.toJson();
    EXPECT_TRUE(balancedJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\\u0001"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST(TraceSink, ScopesNestAcrossThreadPoolWorkers)
{
    TraceSink sink(TraceLevel::Phase);
    {
        ThreadPool pool(4);
        for (int job = 0; job < 16; ++job) {
            pool.post([&sink, job] {
                TraceConfig config{&sink,
                                   "job" + std::to_string(job)};
                TraceScope outer(config, TraceLevel::Phase, "outer",
                                 "test");
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
                {
                    TraceScope inner(config, TraceLevel::Phase,
                                     "inner", "test");
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(50));
                }
            });
        }
        pool.wait();
    }
    EXPECT_EQ(sink.eventCount(), 32u);
    EXPECT_GE(sink.laneCount(), 2);
    EXPECT_LE(sink.laneCount(), 4);

    // Within one lane, any two scopes are disjoint or nested -- the
    // defining property of a valid flame graph.
    std::map<int, std::vector<TraceEvent>> byLane;
    for (const TraceEvent &event : sink.snapshot()) {
        ASSERT_EQ(event.phase, 'X');
        EXPECT_GE(event.dur, 0);
        byLane[event.tid].push_back(event);
    }
    for (const auto &[lane, events] : byLane) {
        (void)lane;
        for (size_t a = 0; a < events.size(); ++a) {
            for (size_t b = a + 1; b < events.size(); ++b) {
                const int64_t aEnd = events[a].ts + events[a].dur;
                const int64_t bEnd = events[b].ts + events[b].dur;
                const bool disjoint = aEnd <= events[b].ts ||
                                      bEnd <= events[a].ts;
                const bool aInB = events[a].ts >= events[b].ts &&
                                  aEnd <= bEnd;
                const bool bInA = events[b].ts >= events[a].ts &&
                                  bEnd <= aEnd;
                EXPECT_TRUE(disjoint || aInB || bInA)
                    << events[a].name << " vs " << events[b].name;
            }
        }
    }
}

TEST(SelectionExplain, NamesTheEliminatingStep)
{
    // Two feasible clusters; C1 violates the PCR > MRC bound, so
    // Figure 10 step 3 must eliminate it and decide the selection.
    std::vector<ClusterChoice> choices(2);
    choices[0].cluster = 0;
    choices[0].feasible = true;
    choices[0].pcrOk = true;
    choices[0].pcrInOk = true;
    choices[1].cluster = 1;
    choices[1].feasible = true;
    choices[1].pcrOk = false;
    choices[1].pcrInOk = true;

    SelectionExplain explain;
    const ClusterId picked = selectBestCluster(
        choices, true, false, false, 0, true, true, &explain);
    EXPECT_EQ(picked, 0);
    ASSERT_EQ(explain.verdicts.size(), 2u);
    EXPECT_EQ(explain.winner, 0);
    EXPECT_TRUE(explain.verdicts[0].survived);
    EXPECT_EQ(explain.verdicts[0].eliminatedBy, nullptr);
    EXPECT_FALSE(explain.verdicts[1].survived);
    EXPECT_STREQ(explain.verdicts[1].eliminatedBy, "pcr");
    EXPECT_STREQ(explain.decidingStep, "pcr");
}

TEST(SelectionExplain, RequiredCopiesDecidesAndSoftKeepHolds)
{
    std::vector<ClusterChoice> choices(2);
    choices[0].cluster = 0;
    choices[0].feasible = true;
    choices[0].pcrOk = false; // both fail PCR: the soft Select keeps
    choices[0].pcrInOk = true;
    choices[0].requiredCopies = 0;
    choices[1].cluster = 1;
    choices[1].feasible = true;
    choices[1].pcrOk = false;
    choices[1].pcrInOk = true;
    choices[1].requiredCopies = 2;

    SelectionExplain explain;
    const ClusterId picked = selectBestCluster(
        choices, true, false, false, 0, true, true, &explain);
    EXPECT_EQ(picked, 0);
    // The vacuous PCR filter must not be blamed: the deciding step is
    // the copy minimization, and that is what eliminated C1.
    EXPECT_STREQ(explain.verdicts[1].eliminatedBy, "required_copies");
    EXPECT_STREQ(explain.decidingStep, "required_copies");
}

TEST(SelectionExplain, InfeasibleClustersAreMarked)
{
    std::vector<ClusterChoice> choices(2);
    choices[0].cluster = 0;
    choices[0].feasible = false;
    choices[1].cluster = 1;
    choices[1].feasible = true;
    choices[1].pcrOk = true;
    choices[1].pcrInOk = true;

    SelectionExplain explain;
    const ClusterId picked = selectBestCluster(
        choices, true, false, false, 0, true, true, &explain);
    EXPECT_EQ(picked, 1);
    EXPECT_STREQ(explain.verdicts[0].eliminatedBy, "feasible");
    EXPECT_TRUE(explain.verdicts[1].survived);
}

TEST(DecisionTrace, CompileEmitsCascadeVerdicts)
{
    TraceSink sink(TraceLevel::Decision);
    CompileOptions options;
    options.trace.sink = &sink;
    options.trace.tag = "inner_product";
    const CompileResult result = compileClustered(
        kernelInnerProduct(), busedGpMachine(2, 2, 1), options);
    ASSERT_TRUE(result.success);

    bool saw_decide = false;
    bool saw_sched = false;
    bool saw_phase_scope = false;
    for (const TraceEvent &event : sink.snapshot()) {
        if (event.name == "assign_decide") {
            saw_decide = true;
            std::string verdicts;
            std::string node;
            for (const auto &[key, value] : event.args) {
                if (key == "verdicts")
                    verdicts = value;
                if (key == "node")
                    node = value;
            }
            // Per-cluster verdicts on a 2-cluster machine name both
            // clusters, win or loss.
            EXPECT_NE(verdicts.find("C0:"), std::string::npos);
            EXPECT_NE(verdicts.find("C1:"), std::string::npos);
            EXPECT_FALSE(node.empty());
        }
        if (event.name == "sched_attempt")
            saw_sched = true;
        if (event.phase == 'X' &&
            event.name == "inner_product/assign")
            saw_phase_scope = true;
    }
    EXPECT_TRUE(saw_decide);
    EXPECT_TRUE(saw_sched);
    EXPECT_TRUE(saw_phase_scope);
}

TEST(PhaseTimes, RecordedWithTracingOff)
{
    const CompileResult result = compileClustered(
        kernelInnerProduct(), busedGpMachine(2, 2, 1));
    ASSERT_TRUE(result.success);
    EXPECT_GT(result.phaseMs.totalMs, 0.0);
    EXPECT_GE(result.phaseMs.assignMs, 0.0);
    EXPECT_LE(result.phaseMs.assignMs, result.phaseMs.totalMs);
    // Ordering and routing are sub-slices of the assigner's wall.
    EXPECT_LE(result.phaseMs.orderMs + result.phaseMs.routeMs,
              result.phaseMs.assignMs + 0.5);
}

TEST(Metrics, CountersAndHistograms)
{
    MetricsRegistry registry;
    EXPECT_TRUE(registry.empty());
    registry.add("trips");
    registry.add("trips", 4);
    EXPECT_EQ(registry.counter("trips"), 5);
    EXPECT_EQ(registry.counter("never"), 0);

    for (int value = 1; value <= 10; ++value)
        registry.record("slack", value);
    const HistogramSummary summary = registry.histogram("slack");
    EXPECT_EQ(summary.count, 10u);
    EXPECT_DOUBLE_EQ(summary.min, 1.0);
    EXPECT_DOUBLE_EQ(summary.max, 10.0);
    EXPECT_DOUBLE_EQ(summary.mean, 5.5);
    EXPECT_GE(summary.p50, 5.0);
    EXPECT_LE(summary.p50, 6.0);
    EXPECT_GE(summary.p90, 9.0);
    EXPECT_LE(summary.p90, 10.0);

    const std::string json = registry.toJson();
    EXPECT_TRUE(balancedJson(json)) << json;
    EXPECT_NE(json.find("\"trips\":5"), std::string::npos);
    EXPECT_NE(json.find("\"slack\""), std::string::npos);
}

TEST(Metrics, BatchStatsEmbedIiSlack)
{
    const std::vector<Dfg> suite = buildSuite(6, defaultSuiteSeed);
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    MetricsRegistry aggregate;
    const BatchOutcome outcome = BatchRunner::run(
        clusteredJobs(suite, machine), 2, 0.0, &aggregate);
    const std::string json = outcome.stats.toJson();
    EXPECT_TRUE(balancedJson(json)) << json;
    EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
    EXPECT_NE(json.find("\"ii_slack\""), std::string::npos);
    EXPECT_NE(json.find("\"job_ms\""), std::string::npos);
    // The caller's registry received the same records.
    EXPECT_EQ(aggregate.histogram("job_ms").count,
              static_cast<uint64_t>(outcome.stats.jobs));
}

TEST(Metrics, BatchTracesCarryPerWorkerLanes)
{
    TraceSink sink(TraceLevel::Phase);
    const std::vector<Dfg> suite = buildSuite(8, defaultSuiteSeed);
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    CompileOptions options;
    options.trace.sink = &sink;
    BatchRunner::run(clusteredJobs(suite, machine, options), 3);
    EXPECT_GT(sink.eventCount(), 0u);
    // Fast jobs can all drain on one worker; at least that worker's
    // lane must exist. Multi-lane layout is asserted by the
    // ThreadPool nesting test above, which forces overlap.
    EXPECT_GE(sink.laneCount(), 1);

    // Jobs are tagged with their loop names, so interleaved lanes
    // stay attributable.
    bool saw_tagged_job = false;
    for (const TraceEvent &event : sink.snapshot()) {
        if (event.name.rfind("c:", 0) == 0 &&
            event.name.find("/batch_job") != std::string::npos) {
            saw_tagged_job = true;
        }
    }
    EXPECT_TRUE(saw_tagged_job);
}

} // namespace
} // namespace cams
