/**
 * @file
 * End-to-end tests of the Figure 5 pipeline: kernels compiled on
 * every paper machine, compared against the equally wide unified
 * baseline.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "sched/verifier.hh"
#include "workload/kernels.hh"

namespace cams
{
namespace
{

std::vector<MachineDesc>
paperMachines()
{
    return {
        busedGpMachine(2, 2, 1), busedGpMachine(4, 4, 2),
        busedFsMachine(2, 2, 1), busedFsMachine(4, 4, 2),
        gridMachine(),
    };
}

TEST(Pipeline, UnifiedCompilesEveryKernelAtMii)
{
    const MachineDesc machine = unifiedGpMachine(8);
    for (const Dfg &kernel : allKernels()) {
        const CompileResult result = compileUnified(kernel, machine);
        ASSERT_TRUE(result.success) << kernel.name();
        EXPECT_EQ(result.ii, result.mii.mii)
            << kernel.name() << " needed II above MII on 8-wide GP";
        EXPECT_EQ(result.copies, 0);
    }
}

TEST(Pipeline, ClusteredKernelsVerifyOnAllMachines)
{
    for (const MachineDesc &machine : paperMachines()) {
        const ResourceModel model(machine);
        for (const Dfg &kernel : allKernels()) {
            const CompileResult result =
                compileClustered(kernel, machine);
            ASSERT_TRUE(result.success)
                << kernel.name() << " on " << machine.name;
            std::string why;
            EXPECT_TRUE(verifySchedule(result.loop, model,
                                       result.schedule, &why))
                << kernel.name() << " on " << machine.name << ": "
                << why;
        }
    }
}

TEST(Pipeline, ClusteredMatchesUnifiedOnKernels)
{
    // The paper's headline: the assignment hides communication for
    // the overwhelming majority of loops. Our small named kernels
    // must all match the unified II on the 2-cluster GP machine.
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const MachineDesc unified = machine.unifiedEquivalent();
    for (const Dfg &kernel : allKernels()) {
        const CompileResult base = compileUnified(kernel, unified);
        const CompileResult clustered =
            compileClustered(kernel, machine);
        ASSERT_TRUE(base.success && clustered.success) << kernel.name();
        EXPECT_EQ(clustered.ii, base.ii) << kernel.name();
    }
}

TEST(Pipeline, ClusteredNeverBeatsUnified)
{
    for (const MachineDesc &machine : paperMachines()) {
        const MachineDesc unified = machine.unifiedEquivalent();
        for (const Dfg &kernel : allKernels()) {
            const CompileResult base = compileUnified(kernel, unified);
            const CompileResult clustered =
                compileClustered(kernel, machine);
            ASSERT_TRUE(base.success && clustered.success);
            EXPECT_GE(clustered.ii, base.ii)
                << kernel.name() << " on " << machine.name;
        }
    }
}

TEST(Pipeline, IiSearchStartsAtUnifiedMii)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    Dfg kernel = kernelTridiag();
    const CompileResult result = compileClustered(kernel, machine);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.mii.recMii, 4);
    EXPECT_GE(result.ii, result.mii.mii);
}

TEST(Pipeline, AttemptsCountIiSearch)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const CompileResult result =
        compileClustered(kernelFirstDiff(), machine);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.attempts, result.ii - result.mii.mii + 1);
}

TEST(Pipeline, IiSlackBackstopTriggersOnInfeasibleMachine)
{
    // Two FS clusters that must communicate every iteration: memory
    // units live only on cluster 0, integer/FP only on cluster 1, so
    // a load-accumulate recurrence is split across the bus and both
    // of its copies add latency inside the cycle. The clustered II is
    // therefore strictly above the unified MII, and an iiSlack that
    // pulls the mii * 4 + iiSlack limit below that II makes the
    // machine infeasible within the search window: the driver must
    // try every II in [mii, limit], then give up cleanly.
    MachineDesc machine;
    machine.name = "split-fs";
    machine.interconnect = InterconnectKind::Bus;
    machine.numBuses = 1;
    ClusterDesc memOnly;
    memOnly.fsUnits[static_cast<int>(FuClass::Memory)] = 1;
    ClusterDesc computeOnly;
    computeOnly.fsUnits[static_cast<int>(FuClass::Integer)] = 1;
    computeOnly.fsUnits[static_cast<int>(FuClass::Float)] = 1;
    machine.clusters = {memOnly, computeOnly};
    machine.validate();

    const Dfg loop = DfgBuilder("cross-recurrence")
                         .op("ld", Opcode::Load)
                         .op("acc", Opcode::FpAdd)
                         .flow("ld", "acc")
                         .carried("acc", "ld", 1)
                         .build();

    const CompileResult feasible = compileClustered(loop, machine);
    ASSERT_TRUE(feasible.success);
    ASSERT_GT(feasible.ii, feasible.mii.mii)
        << "copies in the recurrence must push the II above MII";

    CompileOptions options;
    options.iiSlack = feasible.ii - 1 - 4 * feasible.mii.mii;
    options.fallback = false; // measure the primary search, not rescue
    const CompileResult result =
        compileClustered(loop, machine, options);

    EXPECT_FALSE(result.success);
    EXPECT_EQ(result.ii, 0);
    // The backstop formula is part of the contract: every II in
    // [mii, mii * 4 + iiSlack] was attempted, then the driver gave up
    // with a classified failure naming the last II it tried.
    const int limit = result.mii.mii * 4 + options.iiSlack;
    EXPECT_EQ(result.attempts, limit - result.mii.mii + 1);
    EXPECT_EQ(result.finalIiTried, limit);
    EXPECT_NE(result.failure, FailureKind::None);
    EXPECT_FALSE(result.failureDetail.empty());
}

TEST(Pipeline, NegativeIiSlackShrinksTheSearchWindow)
{
    // iiSlack is documented as a slack on top of mii * 4; a negative
    // value pulling the limit below the MII empties the search window.
    // The primary search never runs, and the degradation ladder
    // rescues the compile with a serialized single-cluster schedule.
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    CompileOptions options;
    options.iiSlack = -1000;
    const CompileResult result =
        compileClustered(kernelHydro(), machine, options);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.degraded, DegradeLevel::SingleCluster);
    EXPECT_EQ(result.attempts, 0);
    EXPECT_EQ(result.failure, FailureKind::None);

    // With the ladder off, the same window yields a clean classified
    // "never tried anything" failure, not a crash.
    options.fallback = false;
    const CompileResult bare =
        compileClustered(kernelHydro(), machine, options);
    EXPECT_FALSE(bare.success);
    EXPECT_EQ(bare.attempts, 0);
    EXPECT_EQ(bare.finalIiTried, 0);
    EXPECT_EQ(bare.failure, FailureKind::IiExhausted);
}

TEST(Pipeline, UnifiedRequiresSingleCluster)
{
    EXPECT_DEATH(
        { compileUnified(kernelHydro(), busedGpMachine(2, 2, 1)); },
        "single-cluster");
}

TEST(Pipeline, GridKernelsWithinOneCycleOfUnified)
{
    // The paper reports 98% of loops within one cycle on the grid;
    // our named kernels should all be within one.
    const MachineDesc grid = gridMachine();
    const MachineDesc unified = grid.unifiedEquivalent();
    for (const Dfg &kernel : allKernels()) {
        const CompileResult base = compileUnified(kernel, unified);
        const CompileResult clustered = compileClustered(kernel, grid);
        ASSERT_TRUE(base.success && clustered.success) << kernel.name();
        EXPECT_LE(clustered.ii - base.ii, 1) << kernel.name();
    }
}

} // namespace
} // namespace cams
