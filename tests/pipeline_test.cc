/**
 * @file
 * End-to-end tests of the Figure 5 pipeline: kernels compiled on
 * every paper machine, compared against the equally wide unified
 * baseline.
 */

#include <gtest/gtest.h>

#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "sched/verifier.hh"
#include "workload/kernels.hh"

namespace cams
{
namespace
{

std::vector<MachineDesc>
paperMachines()
{
    return {
        busedGpMachine(2, 2, 1), busedGpMachine(4, 4, 2),
        busedFsMachine(2, 2, 1), busedFsMachine(4, 4, 2),
        gridMachine(),
    };
}

TEST(Pipeline, UnifiedCompilesEveryKernelAtMii)
{
    const MachineDesc machine = unifiedGpMachine(8);
    for (const Dfg &kernel : allKernels()) {
        const CompileResult result = compileUnified(kernel, machine);
        ASSERT_TRUE(result.success) << kernel.name();
        EXPECT_EQ(result.ii, result.mii.mii)
            << kernel.name() << " needed II above MII on 8-wide GP";
        EXPECT_EQ(result.copies, 0);
    }
}

TEST(Pipeline, ClusteredKernelsVerifyOnAllMachines)
{
    for (const MachineDesc &machine : paperMachines()) {
        const ResourceModel model(machine);
        for (const Dfg &kernel : allKernels()) {
            const CompileResult result =
                compileClustered(kernel, machine);
            ASSERT_TRUE(result.success)
                << kernel.name() << " on " << machine.name;
            std::string why;
            EXPECT_TRUE(verifySchedule(result.loop, model,
                                       result.schedule, &why))
                << kernel.name() << " on " << machine.name << ": "
                << why;
        }
    }
}

TEST(Pipeline, ClusteredMatchesUnifiedOnKernels)
{
    // The paper's headline: the assignment hides communication for
    // the overwhelming majority of loops. Our small named kernels
    // must all match the unified II on the 2-cluster GP machine.
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const MachineDesc unified = machine.unifiedEquivalent();
    for (const Dfg &kernel : allKernels()) {
        const CompileResult base = compileUnified(kernel, unified);
        const CompileResult clustered =
            compileClustered(kernel, machine);
        ASSERT_TRUE(base.success && clustered.success) << kernel.name();
        EXPECT_EQ(clustered.ii, base.ii) << kernel.name();
    }
}

TEST(Pipeline, ClusteredNeverBeatsUnified)
{
    for (const MachineDesc &machine : paperMachines()) {
        const MachineDesc unified = machine.unifiedEquivalent();
        for (const Dfg &kernel : allKernels()) {
            const CompileResult base = compileUnified(kernel, unified);
            const CompileResult clustered =
                compileClustered(kernel, machine);
            ASSERT_TRUE(base.success && clustered.success);
            EXPECT_GE(clustered.ii, base.ii)
                << kernel.name() << " on " << machine.name;
        }
    }
}

TEST(Pipeline, IiSearchStartsAtUnifiedMii)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    Dfg kernel = kernelTridiag();
    const CompileResult result = compileClustered(kernel, machine);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.mii.recMii, 4);
    EXPECT_GE(result.ii, result.mii.mii);
}

TEST(Pipeline, AttemptsCountIiSearch)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const CompileResult result =
        compileClustered(kernelFirstDiff(), machine);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.attempts, result.ii - result.mii.mii + 1);
}

TEST(Pipeline, UnifiedRequiresSingleCluster)
{
    EXPECT_DEATH(
        { compileUnified(kernelHydro(), busedGpMachine(2, 2, 1)); },
        "single-cluster");
}

TEST(Pipeline, GridKernelsWithinOneCycleOfUnified)
{
    // The paper reports 98% of loops within one cycle on the grid;
    // our named kernels should all be within one.
    const MachineDesc grid = gridMachine();
    const MachineDesc unified = grid.unifiedEquivalent();
    for (const Dfg &kernel : allKernels()) {
        const CompileResult base = compileUnified(kernel, unified);
        const CompileResult clustered = compileClustered(kernel, grid);
        ASSERT_TRUE(base.success && clustered.success) << kernel.name();
        EXPECT_LE(clustered.ii - base.ii, 1) << kernel.name();
    }
}

} // namespace
} // namespace cams
