/**
 * @file
 * Heterogeneous-machine coverage: the paper states the techniques
 * handle "arbitrary numbers of clusters which can be homogeneous or
 * heterogeneous in the types of function units they contain". These
 * tests exercise asymmetric cluster sizes, mixed port counts, uneven
 * FS unit mixes, link topologies beyond the grid, and MRT dumps.
 */

#include <gtest/gtest.h>

#include "machine/configs.hh"
#include "mrt/mrt.hh"
#include "pipeline/driver.hh"
#include "sched/verifier.hh"
#include "sim/compare.hh"
#include "workload/kernels.hh"
#include "workload/suite.hh"

namespace cams
{
namespace
{

/** 4 GP + 2 GP clusters with asymmetric ports. */
MachineDesc
lopsidedMachine()
{
    MachineDesc machine;
    machine.name = "lopsided";
    machine.interconnect = InterconnectKind::Bus;
    machine.numBuses = 2;
    ClusterDesc big;
    big.gpUnits = 4;
    big.readPorts = 2;
    big.writePorts = 1;
    ClusterDesc small;
    small.gpUnits = 2;
    small.readPorts = 1;
    small.writePorts = 2;
    machine.clusters = {big, small};
    machine.validate();
    return machine;
}

/** FS clusters with different specializations (mem-heavy, fp-heavy). */
MachineDesc
skewedFsMachine()
{
    MachineDesc machine;
    machine.name = "skewed-fs";
    machine.interconnect = InterconnectKind::Bus;
    machine.numBuses = 2;
    ClusterDesc memory_side;
    memory_side.fsUnits = {2, 2, 0}; // no FP units at all
    memory_side.readPorts = 1;
    memory_side.writePorts = 1;
    ClusterDesc fp_side;
    fp_side.fsUnits = {0, 1, 3}; // no memory units
    fp_side.readPorts = 1;
    fp_side.writePorts = 1;
    machine.clusters = {memory_side, fp_side};
    machine.validate();
    return machine;
}

/** A 3-cluster line: ends only reach each other through the middle. */
MachineDesc
lineMachine()
{
    MachineDesc machine;
    machine.name = "3c-line";
    machine.interconnect = InterconnectKind::PointToPoint;
    for (int c = 0; c < 3; ++c) {
        ClusterDesc cluster;
        cluster.gpUnits = 3;
        cluster.readPorts = 2;
        cluster.writePorts = 2;
        machine.clusters.push_back(cluster);
    }
    machine.links = {{0, 1}, {1, 2}};
    machine.validate();
    return machine;
}

TEST(Hetero, LopsidedClustersCompileAndVerify)
{
    const MachineDesc machine = lopsidedMachine();
    const ResourceModel model(machine);
    for (const Dfg &kernel : allKernels()) {
        const CompileResult result = compileClustered(kernel, machine);
        ASSERT_TRUE(result.success) << kernel.name();
        std::string why;
        EXPECT_TRUE(
            verifySchedule(result.loop, model, result.schedule, &why))
            << kernel.name() << ": " << why;
        const auto report = checkEquivalence(kernel, result.loop,
                                             result.schedule, machine);
        EXPECT_TRUE(report.equivalent) << kernel.name();
    }
}

TEST(Hetero, SkewedFsForcesCrossTraffic)
{
    // Memory ops can only run on cluster 0 and most FP only on
    // cluster 1: every load feeding an FP op must be copied across.
    const MachineDesc machine = skewedFsMachine();
    const CompileResult result =
        compileClustered(kernelInnerProduct(), machine);
    ASSERT_TRUE(result.success);
    EXPECT_GT(result.copies, 0);
    // Loads on the memory cluster, FP on the FP cluster.
    for (NodeId v = 0; v < result.loop.numOriginalNodes; ++v) {
        const Opcode op = result.loop.graph.node(v).op;
        if (isMemoryOpcode(op)) {
            EXPECT_EQ(result.loop.placement[v].cluster, 0);
        }
        if (isFloatOpcode(op)) {
            EXPECT_EQ(result.loop.placement[v].cluster, 1);
        }
    }
    const auto report = checkEquivalence(kernelInnerProduct(),
                                         result.loop, result.schedule,
                                         machine);
    EXPECT_TRUE(report.equivalent);
}

TEST(Hetero, SkewedFsRejectsImpossibleOps)
{
    // A machine with no FP units anywhere cannot take FP loops.
    MachineDesc machine = skewedFsMachine();
    machine.clusters[1].fsUnits[static_cast<int>(FuClass::Float)] = 0;
    machine.clusters[1].fsUnits[static_cast<int>(FuClass::Integer)] = 2;
    machine.validate();
    EXPECT_FALSE(machine.canExecute(Opcode::FpAdd));
    const ResourceModel model(machine);
    ClusterAssigner assigner(model);
    Dfg loop = kernelInnerProduct();
    EXPECT_DEATH({ assigner.run(loop, 8); }, "cannot execute");
}

TEST(Hetero, LineTopologyRoutesEndToEnd)
{
    const MachineDesc machine = lineMachine();
    EXPECT_EQ(machine.route(0, 2),
              (std::vector<ClusterId>{0, 1, 2}));
    const ResourceModel model(machine);
    for (uint64_t seed = 8300; seed < 8306; ++seed) {
        const Dfg loop = generateLoop(seed);
        const CompileResult result = compileClustered(loop, machine);
        ASSERT_TRUE(result.success) << seed;
        std::string why;
        EXPECT_TRUE(
            verifySchedule(result.loop, model, result.schedule, &why))
            << seed << ": " << why;
        const auto report = checkEquivalence(loop, result.loop,
                                             result.schedule, machine);
        EXPECT_TRUE(report.equivalent) << seed;
    }
}

TEST(Hetero, ResMiiRejectsMixedPools)
{
    MachineDesc machine = lopsidedMachine();
    machine.clusters[1].gpUnits = 0;
    machine.clusters[1].fsUnits = {1, 1, 1};
    machine.validate();
    Dfg loop = kernelHydro();
    EXPECT_DEATH({ resMii(loop, machine); }, "mixing");
}

TEST(Hetero, MrtDumpShowsOccupancy)
{
    const ResourceModel model(lopsidedMachine());
    Mrt mrt(model, 2);
    mrt.reserveAt(model.opRequest(0, Opcode::IntAlu), 0);
    const std::string dump = mrt.dump();
    EXPECT_NE(dump.find("MRT II=2"), std::string::npos);
    EXPECT_NE(dump.find("gp@0"), std::string::npos);
    EXPECT_NE(dump.find("1/4"), std::string::npos);
    EXPECT_NE(dump.find("bus"), std::string::npos);
}

} // namespace
} // namespace cams
