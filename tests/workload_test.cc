/**
 * @file
 * Tests for the synthetic workload generator and the suite: Table 1
 * calibration, determinism, structural invariants, kernel shapes.
 */

#include <gtest/gtest.h>

#include "graph/recmii.hh"
#include "graph/scc.hh"
#include "graph/textio.hh"
#include "workload/kernels.hh"
#include "workload/suite.hh"

namespace cams
{
namespace
{

TEST(Generator, Deterministic)
{
    const Dfg a = generateLoop(123);
    const Dfg b = generateLoop(123);
    EXPECT_EQ(serializeDfg(a), serializeDfg(b));
    const Dfg c = generateLoop(124);
    EXPECT_NE(serializeDfg(a), serializeDfg(c));
}

TEST(Generator, WellFormedAcrossSeeds)
{
    for (uint64_t seed = 0; seed < 200; ++seed) {
        const Dfg graph = generateLoop(seed);
        std::string why;
        EXPECT_TRUE(graph.wellFormed(&why)) << "seed " << seed << ": "
                                            << why;
        EXPECT_GE(graph.numNodes(), 2);
        EXPECT_LE(graph.numNodes(), 161);
        EXPECT_GE(graph.numEdges(), 1);
        EXPECT_LE(graph.numEdges(), 232);
    }
}

TEST(Generator, ExactlyOneBranchAsSink)
{
    for (uint64_t seed = 0; seed < 100; ++seed) {
        const Dfg graph = generateLoop(seed);
        int branches = 0;
        for (const DfgNode &node : graph.nodes()) {
            if (node.op == Opcode::Branch) {
                ++branches;
                EXPECT_TRUE(graph.outEdges(node.id).empty());
            }
            if (node.op == Opcode::Store) {
                EXPECT_TRUE(graph.outEdges(node.id).empty());
            }
            EXPECT_NE(node.op, Opcode::Copy);
        }
        EXPECT_EQ(branches, 1) << "seed " << seed;
    }
}

TEST(Generator, RecMiiAlwaysFinite)
{
    // Every generated loop must be schedulable at some II: no
    // zero-distance cycles (recMii would fatal on one).
    for (uint64_t seed = 300; seed < 500; ++seed) {
        const Dfg graph = generateLoop(seed);
        EXPECT_GE(recMii(graph), 1) << "seed " << seed;
    }
}

TEST(Suite, SizeAndDeterminism)
{
    const auto suite = buildSuite(50, 7);
    EXPECT_EQ(suite.size(), 50u);
    const auto again = buildSuite(50, 7);
    for (size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(serializeDfg(suite[i]), serializeDfg(again[i]));
}

TEST(Suite, Table1Calibration)
{
    const auto suite = buildSuite(); // the full 1327 loops
    const SuiteStats stats = computeSuiteStats(suite);

    EXPECT_EQ(stats.totalLoops, 1327);

    // Paper Table 1: nodes min 2 avg 17.5 max 161.
    EXPECT_EQ(static_cast<int>(stats.nodes.min()), 2);
    EXPECT_NEAR(stats.nodes.mean(), 17.5, 2.5);
    EXPECT_LE(stats.nodes.max(), 161);
    EXPECT_GE(stats.nodes.max(), 80);

    // SCCs per loop: avg 0.4, max 6; ~301 loops with SCCs.
    EXPECT_NEAR(stats.sccsPerLoop.mean(), 0.4, 0.15);
    EXPECT_LE(stats.sccsPerLoop.max(), 6);
    EXPECT_NEAR(stats.loopsWithSccs, 301, 75);

    // Nodes in non-trivial SCCs: min 2 avg 9.0 max 48.
    EXPECT_GE(stats.sccNodes.min(), 2);
    EXPECT_NEAR(stats.sccNodes.mean(), 9.0, 3.0);
    EXPECT_LE(stats.sccNodes.max(), 48);

    // Edges: min 1 avg 22.5 max 232.
    EXPECT_GE(stats.edges.min(), 1);
    EXPECT_NEAR(stats.edges.mean(), 22.5, 3.5);
    EXPECT_LE(stats.edges.max(), 232);
}

TEST(Kernels, ExpectedRecurrences)
{
    EXPECT_EQ(recMii(kernelHydro()), 1);
    EXPECT_EQ(recMii(kernelFirstDiff()), 1);
    EXPECT_EQ(recMii(kernelStateEquation()), 1);
    EXPECT_EQ(recMii(kernelFir4()), 1);
    EXPECT_EQ(recMii(kernelInnerProduct()), 1);  // acc self-loop, lat 1
    EXPECT_EQ(recMii(kernelTridiag()), 4);       // fadd + fmul cycle
    EXPECT_EQ(recMii(kernelFirstOrderRecurrence()), 1);
    EXPECT_EQ(recMii(kernelAddressChase()), 3); // alu + load cycle
    EXPECT_EQ(recMii(kernelLinearRecurrence()), 4); // fmul + fadd
    EXPECT_EQ(recMii(kernelPredictor()), 1);
    EXPECT_EQ(recMii(kernelHydro2d()), 1);
    // crc: xor_in -> mask -> ld_tab(2) -> xor_out -> (d1) xor_in:
    // (1 + 1 + 2 + 1) / 1 = 5.
    EXPECT_EQ(recMii(kernelCrc()), 5);
}

TEST(Kernels, SccShapes)
{
    const SccInfo tri = findSccs(kernelTridiag());
    EXPECT_EQ(tri.numNonTrivial(), 1);
    const SccInfo hydro = findSccs(kernelHydro());
    EXPECT_EQ(hydro.numNonTrivial(), 0);
}

TEST(Kernels, AllWellFormedAndNamed)
{
    const auto kernels = allKernels();
    EXPECT_EQ(kernels.size(), 12u);
    for (const Dfg &kernel : kernels) {
        std::string why;
        EXPECT_TRUE(kernel.wellFormed(&why)) << kernel.name();
        EXPECT_FALSE(kernel.name().empty());
        EXPECT_GE(kernel.numNodes(), 4);
    }
}

} // namespace
} // namespace cams
