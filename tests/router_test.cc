/**
 * @file
 * Unit tests for point-to-point copy routing on the grid machine.
 */

#include <gtest/gtest.h>

#include "assign/router.hh"
#include "machine/configs.hh"

namespace cams
{
namespace
{

TEST(Router, DirectNeighbor)
{
    const MachineDesc grid = gridMachine();
    const auto hops = planHops(grid, 0, {1});
    ASSERT_EQ(hops.size(), 1u);
    EXPECT_EQ(hops[0], (Hop{0, 1}));
}

TEST(Router, DiagonalNeedsTwoHops)
{
    const MachineDesc grid = gridMachine();
    const auto hops = planHops(grid, 0, {3});
    ASSERT_EQ(hops.size(), 2u);
    EXPECT_EQ(hops[0].from, 0);
    EXPECT_EQ(hops[1].to, 3);
    EXPECT_EQ(hops[0].to, hops[1].from);
}

TEST(Router, SharedPrefixIsReused)
{
    // Destinations 1 and 3: the route to 3 goes through 1 (BFS visits
    // lower ids first), so the tree has exactly two hops.
    const MachineDesc grid = gridMachine();
    const auto hops = planHops(grid, 0, {1, 3});
    EXPECT_EQ(hops.size(), 2u);
}

TEST(Router, AllDestinations)
{
    const MachineDesc grid = gridMachine();
    const auto hops = planHops(grid, 0, {1, 2, 3});
    // Tree spanning three destinations: exactly three hops.
    EXPECT_EQ(hops.size(), 3u);
    // Parent-before-child order: a hop's source is the root or an
    // earlier hop's target.
    std::vector<ClusterId> landed = {0};
    for (const Hop &hop : hops) {
        EXPECT_NE(std::find(landed.begin(), landed.end(), hop.from),
                  landed.end());
        landed.push_back(hop.to);
    }
}

TEST(Router, DeterministicAcrossCalls)
{
    const MachineDesc grid = gridMachine();
    const auto first = planHops(grid, 2, {0, 1, 3});
    const auto second = planHops(grid, 2, {0, 1, 3});
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i], second[i]);
}

TEST(Router, SubsetProducesSubtree)
{
    // The hop tree of a subset of destinations is a subset of the hop
    // tree for all destinations (the unassign path relies on this).
    const MachineDesc grid = gridMachine();
    const auto full = planHops(grid, 0, {1, 2, 3});
    const auto sub = planHops(grid, 0, {3});
    for (const Hop &hop : sub) {
        EXPECT_NE(std::find(full.begin(), full.end(), hop), full.end());
    }
}

TEST(Router, BusedMachineIsRejected)
{
    const MachineDesc bused = busedGpMachine(2, 2, 1);
    EXPECT_DEATH({ planHops(bused, 0, {1}); }, "bused");
}

} // namespace
} // namespace cams
