/**
 * @file
 * Negative tests of the independent schedule verifier: every class of
 * corruption -- bad II, truncated schedule, invalid placement
 * annotation, violated dependence, over-subscribed MRT row -- must be
 * rejected with a distinct diagnosis. The verifier is the oracle the
 * fuzz harness and the driver's retry loop both lean on, so its
 * rejections have to be trustworthy and tell the classes apart.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "sched/verifier.hh"
#include "workload/kernels.hh"

namespace cams
{
namespace
{

/** A known-good compiled kernel to corrupt, plus its machine model. */
struct GoodSchedule
{
    GoodSchedule()
        : machine(busedGpMachine(2, 2, 1)), model(machine)
    {
        const CompileResult result =
            compileClustered(kernelTridiag(), machine);
        EXPECT_TRUE(result.success);
        EXPECT_EQ(result.degraded, DegradeLevel::None);
        loop = result.loop;
        schedule = result.schedule;
    }

    MachineDesc machine;
    ResourceModel model;
    AnnotatedLoop loop;
    Schedule schedule;
};

TEST(Verifier, AcceptsTheUncorruptedSchedule)
{
    GoodSchedule good;
    std::string why = "stale";
    EXPECT_TRUE(
        verifySchedule(good.loop, good.model, good.schedule, &why));
    EXPECT_TRUE(why.empty()) << "accept must clear the diagnosis";
}

TEST(Verifier, RejectsNonPositiveIi)
{
    GoodSchedule good;
    Schedule bad = good.schedule;
    bad.ii = 0;
    std::string why;
    EXPECT_FALSE(verifySchedule(good.loop, good.model, bad, &why));
    EXPECT_NE(why.find("non-positive II"), std::string::npos) << why;
}

TEST(Verifier, RejectsTruncatedSchedule)
{
    GoodSchedule good;
    Schedule bad = good.schedule;
    bad.startCycle.pop_back();
    std::string why;
    EXPECT_FALSE(verifySchedule(good.loop, good.model, bad, &why));
    EXPECT_NE(why.find("schedule size mismatch"), std::string::npos)
        << why;
}

TEST(Verifier, RejectsBadPlacementAnnotation)
{
    GoodSchedule good;
    AnnotatedLoop bad = good.loop;
    bad.placement[0].cluster = 7; // machine has two clusters
    std::string why;
    EXPECT_FALSE(verifySchedule(bad, good.model, good.schedule, &why));
    EXPECT_NE(why.find("bad annotation"), std::string::npos) << why;
}

TEST(Verifier, RejectsViolatedDependence)
{
    GoodSchedule good;
    // Pull the sink of an intra-iteration edge one cycle too early.
    Schedule bad = good.schedule;
    bool corrupted = false;
    for (const DfgEdge &edge : good.loop.graph.edges()) {
        if (edge.distance != 0)
            continue;
        bad.startCycle[edge.dst] =
            bad.startCycle[edge.src] + edge.latency - 1;
        corrupted = true;
        break;
    }
    ASSERT_TRUE(corrupted) << "kernel has no intra-iteration edge";
    std::string why;
    EXPECT_FALSE(verifySchedule(good.loop, good.model, bad, &why));
    EXPECT_NE(why.find("dependence violated"), std::string::npos)
        << why;
}

TEST(Verifier, RejectsOverSubscribedMrtRow)
{
    // Five independent integer ops forced into the same row of a
    // one-wide machine at II 1: dependences all hold (there are
    // none), so only the MRT check can catch this.
    DfgBuilder builder("port-storm");
    for (int i = 0; i < 5; ++i)
        builder.op("op" + std::to_string(i), Opcode::IntAlu);
    const Dfg graph = builder.build();

    const MachineDesc machine = unifiedGpMachine(1);
    const ResourceModel model(machine);
    const AnnotatedLoop loop = unifiedLoop(graph);
    Schedule schedule;
    schedule.ii = 1;
    schedule.startCycle.assign(graph.numNodes(), 0);

    std::string why;
    EXPECT_FALSE(verifySchedule(loop, model, schedule, &why));
    EXPECT_NE(why.find("resource overflow"), std::string::npos) << why;
}

} // namespace
} // namespace cams
