/**
 * @file
 * Quality tests against the exhaustive oracle: on small loops the
 * heuristic assignment must track the provably optimal II closely,
 * and whenever it deviates from the unified machine the oracle must
 * confirm the deviation (or the gap stay within one cycle).
 */

#include <gtest/gtest.h>

#include "assign/exhaustive.hh"
#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "workload/kernels.hh"
#include "workload/suite.hh"

namespace cams
{
namespace
{

TEST(Oracle, TooLargeGraphsAreRefused)
{
    const ResourceModel model(busedGpMachine(2, 2, 1));
    const Dfg big = generateLoop(2, GeneratorParams{.minNodes = 40});
    EXPECT_EQ(exhaustiveFeasible(big, model, 4),
              ExhaustiveVerdict::TooLarge);
    EXPECT_EQ(exhaustiveBestIi(big, model, 1, 4), 0);
}

TEST(Oracle, TrivialLoopFeasibleAtOne)
{
    Dfg graph;
    graph.addNode(Opcode::IntAlu);
    const ResourceModel model(busedGpMachine(2, 2, 1));
    EXPECT_EQ(exhaustiveFeasible(graph, model, 1),
              ExhaustiveVerdict::Feasible);
}

TEST(Oracle, DetectsResourceInfeasibility)
{
    // 10 ops on total width 8 cannot fit at II 1.
    Dfg graph;
    for (int i = 0; i < 10; ++i)
        graph.addNode(Opcode::IntAlu);
    const ResourceModel model(busedGpMachine(2, 2, 1));
    EXPECT_EQ(exhaustiveFeasible(graph, model, 1),
              ExhaustiveVerdict::Infeasible);
    EXPECT_EQ(exhaustiveBestIi(graph, model, 1, 4), 2);
}

TEST(Oracle, DetectsRecurrenceCostOfSplitting)
{
    // A latency-4 recurrence of 5 integer ops on 2x2-GP clusters at
    // II 4: the SCC fits one cluster only if the cluster has room.
    Dfg graph = kernelTridiag();
    const ResourceModel model(busedGpMachine(2, 2, 1));
    EXPECT_EQ(exhaustiveFeasible(graph, model, 4),
              ExhaustiveVerdict::Feasible);
    // At II 3 even the unified machine fails (RecMII 4).
    EXPECT_EQ(exhaustiveFeasible(graph, model, 3),
              ExhaustiveVerdict::Infeasible);
}

TEST(Quality, HeuristicTracksOracleOnSmallLoops)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const ResourceModel model(machine);
    const MachineDesc unified = machine.unifiedEquivalent();

    int checked = 0;
    int optimal = 0;
    for (uint64_t seed = 10000; seed < 10200 && checked < 40; ++seed) {
        const Dfg loop = generateLoop(seed);
        if (loop.numNodes() > 12)
            continue;
        const CompileResult base = compileUnified(loop, unified);
        ASSERT_TRUE(base.success);
        const CompileResult clustered = compileClustered(loop, machine);
        ASSERT_TRUE(clustered.success);

        const int best = exhaustiveBestIi(loop, model, base.mii.mii,
                                          clustered.ii);
        if (best == 0)
            continue; // too large after all
        ++checked;
        ASSERT_NE(best, -1); // the heuristic's II is always feasible
        // The heuristic may only lose one cycle to the oracle (the
        // oracle's model is count-mode, so it is itself a lower
        // bound on what any scheduler can realize).
        EXPECT_LE(clustered.ii - best, 1) << "seed " << seed;
        if (clustered.ii == best)
            ++optimal;
    }
    ASSERT_GE(checked, 20);
    // The heuristic should be optimal on the vast majority.
    EXPECT_GE(100.0 * optimal / checked, 85.0);
}

TEST(Quality, DeviationsAreMostlyProvablyUnavoidable)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const ResourceModel model(machine);
    const MachineDesc unified = machine.unifiedEquivalent();

    int deviations = 0;
    int confirmed = 0;
    for (uint64_t seed = 11000; seed < 11400; ++seed) {
        const Dfg loop = generateLoop(seed);
        if (loop.numNodes() > 12)
            continue;
        const CompileResult base = compileUnified(loop, unified);
        const CompileResult clustered = compileClustered(loop, machine);
        ASSERT_TRUE(base.success && clustered.success);
        if (clustered.ii == base.ii)
            continue;
        ++deviations;
        if (exhaustiveFeasible(loop, model, base.ii) ==
            ExhaustiveVerdict::Infeasible) {
            ++confirmed;
        }
    }
    // Most deviations on small loops are certified optimal by the
    // oracle (the calibration suite keeps a small gap).
    if (deviations > 0) {
        EXPECT_GE(confirmed, deviations / 2);
    }
}

} // namespace
} // namespace cams
