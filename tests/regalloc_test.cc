/**
 * @file
 * Tests for rotating register allocation: lifetime-derived counts,
 * per-file packing, broadcast alignment, the occupancy checker, and
 * end-to-end allocation of compiled kernels on every paper machine.
 */

#include <gtest/gtest.h>

#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "regalloc/regalloc.hh"
#include "sched/regmetrics.hh"
#include "workload/kernels.hh"
#include "workload/suite.hh"

namespace cams
{
namespace
{

Dfg
loadStoreChain()
{
    Dfg graph;
    const NodeId a = graph.addNode(Opcode::Load);
    const NodeId b = graph.addNode(Opcode::Store);
    graph.addEdge(a, b);
    return graph;
}

TEST(RegAlloc, SimpleChain)
{
    Dfg graph = loadStoreChain();
    const MachineDesc machine = unifiedGpMachine(8);
    const CompileResult result = compileUnified(graph, machine);
    ASSERT_TRUE(result.success);
    const RegisterAllocation allocation =
        allocateRegisters(result.loop, result.schedule, machine);
    std::string why;
    EXPECT_TRUE(verifyAllocation(result.loop, result.schedule,
                                 allocation, &why))
        << why;
    // Only the producer (load) holds a live value; the store is dead.
    ASSERT_EQ(allocation.values.size(), 1u);
    EXPECT_EQ(allocation.values[0].producer, 0);
    EXPECT_GE(allocation.registersPerFile[0], 1);
}

TEST(RegAlloc, LongLifetimeGetsMultipleRegisters)
{
    Dfg graph = loadStoreChain();
    const AnnotatedLoop loop = unifiedLoop(graph);
    Schedule schedule;
    schedule.ii = 2;
    schedule.startCycle = {0, 5}; // lifetime 5 at II 2
    const RegisterAllocation allocation =
        allocateRegisters(loop, schedule, unifiedGpMachine(4));
    ASSERT_EQ(allocation.values.size(), 1u);
    EXPECT_EQ(allocation.values[0].count, 3); // ceil(5/2)
    EXPECT_EQ(allocation.mveFactor, 3);
    std::string why;
    EXPECT_TRUE(verifyAllocation(loop, schedule, allocation, &why))
        << why;
}

TEST(RegAlloc, InstanceRegisterRotates)
{
    ValueAllocation value;
    value.base = 4;
    value.count = 3;
    EXPECT_EQ(value.instanceRegister(0), 4);
    EXPECT_EQ(value.instanceRegister(1), 5);
    EXPECT_EQ(value.instanceRegister(2), 6);
    EXPECT_EQ(value.instanceRegister(3), 4);
}

TEST(RegAlloc, CheckerCatchesUndersizedRange)
{
    Dfg graph = loadStoreChain();
    const AnnotatedLoop loop = unifiedLoop(graph);
    Schedule schedule;
    schedule.ii = 2;
    schedule.startCycle = {0, 5};
    RegisterAllocation allocation =
        allocateRegisters(loop, schedule, unifiedGpMachine(4));
    allocation.values[0].count = 1; // lie: one register for 3 instances
    std::string why;
    EXPECT_FALSE(verifyAllocation(loop, schedule, allocation, &why));
    EXPECT_NE(why.find("clash"), std::string::npos);
}

TEST(RegAlloc, CheckerCatchesMissingValue)
{
    Dfg graph = loadStoreChain();
    const AnnotatedLoop loop = unifiedLoop(graph);
    Schedule schedule;
    schedule.ii = 2;
    schedule.startCycle = {0, 3};
    RegisterAllocation allocation =
        allocateRegisters(loop, schedule, unifiedGpMachine(4));
    allocation.values.clear();
    std::string why;
    EXPECT_FALSE(verifyAllocation(loop, schedule, allocation, &why));
    EXPECT_NE(why.find("without registers"), std::string::npos);
}

TEST(RegAlloc, BroadcastCopyAlignsAcrossFiles)
{
    const MachineDesc machine = busedGpMachine(4, 4, 2);
    for (const Dfg &kernel : allKernels()) {
        const CompileResult result = compileClustered(kernel, machine);
        ASSERT_TRUE(result.success) << kernel.name();
        const RegisterAllocation allocation =
            allocateRegisters(result.loop, result.schedule, machine);
        std::string why;
        EXPECT_TRUE(verifyAllocation(result.loop, result.schedule,
                                     allocation, &why))
            << kernel.name() << ": " << why;
    }
}

TEST(RegAlloc, RegistersBoundedByMaxLiveTimesFiles)
{
    // Per-file sums can exceed MaxLive (packing is per value), but
    // each value's count matches its lifetime bound exactly.
    const MachineDesc machine = unifiedGpMachine(8);
    for (const Dfg &kernel : allKernels()) {
        const CompileResult result = compileUnified(kernel, machine);
        ASSERT_TRUE(result.success);
        const RegisterAllocation allocation =
            allocateRegisters(result.loop, result.schedule, machine);
        const RegMetrics metrics =
            computeRegMetrics(result.loop, result.schedule);
        EXPECT_EQ(allocation.mveFactor, metrics.mveFactor)
            << kernel.name();
        int total = 0;
        for (int regs : allocation.registersPerFile)
            total += regs;
        EXPECT_GE(total, metrics.maxLive) << kernel.name();
    }
}

TEST(RegAlloc, GeneratedLoopsAllocateCleanly)
{
    const MachineDesc machine = busedFsMachine(2, 2, 1);
    for (uint64_t seed = 8100; seed < 8110; ++seed) {
        const Dfg loop = generateLoop(seed);
        const CompileResult result = compileClustered(loop, machine);
        ASSERT_TRUE(result.success) << seed;
        const RegisterAllocation allocation =
            allocateRegisters(result.loop, result.schedule, machine);
        std::string why;
        EXPECT_TRUE(verifyAllocation(result.loop, result.schedule,
                                     allocation, &why))
            << seed << ": " << why;
    }
}

} // namespace
} // namespace cams
