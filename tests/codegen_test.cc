/**
 * @file
 * Tests for kernel/pipeline code emission: structural properties of
 * the listing (every op present with its stage predicate, operand
 * register references resolve, copies name their transport, the
 * prologue/epilogue expansion has the right instance counts).
 */

#include <gtest/gtest.h>

#include "codegen/emit.hh"
#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "workload/kernels.hh"

namespace cams
{
namespace
{

struct Compiled
{
    CompileResult result;
    RegisterAllocation allocation;
};

Compiled
compile(const Dfg &loop, const MachineDesc &machine)
{
    Compiled compiled;
    compiled.result = compileClustered(loop, machine);
    EXPECT_TRUE(compiled.result.success);
    compiled.allocation = allocateRegisters(
        compiled.result.loop, compiled.result.schedule, machine);
    return compiled;
}

size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    size_t count = 0;
    for (size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + needle.size())) {
        ++count;
    }
    return count;
}

TEST(Codegen, KernelListsEveryOpOnce)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const Compiled compiled = compile(kernelHydro(), machine);
    const std::string text =
        emitKernel(compiled.result.loop, compiled.result.schedule,
                   compiled.allocation, machine);
    for (const DfgNode &node : compiled.result.loop.graph.nodes()) {
        EXPECT_GE(countOccurrences(text, opcodeName(node.op) + "("), 1u)
            << node.name;
    }
    // One "cycle N:" header per kernel row.
    EXPECT_EQ(countOccurrences(text, "cycle "),
              static_cast<size_t>(compiled.result.ii));
}

TEST(Codegen, StagePredicatesPresent)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const Compiled compiled = compile(kernelStateEquation(), machine);
    const std::string text =
        emitKernel(compiled.result.loop, compiled.result.schedule,
                   compiled.allocation, machine);
    EXPECT_NE(text.find("(p0)"), std::string::npos);
    const int stages = compiled.result.schedule.stageCount();
    EXPECT_NE(text.find("(p" + std::to_string(stages - 1) + ")"),
              std::string::npos);
}

TEST(Codegen, CopiesNameTheirTransport)
{
    const MachineDesc bus = busedGpMachine(2, 2, 1);
    const Compiled on_bus = compile(kernelFir4(), bus);
    if (on_bus.result.copies > 0) {
        const std::string text =
            emitKernel(on_bus.result.loop, on_bus.result.schedule,
                       on_bus.allocation, bus);
        EXPECT_NE(text.find("via bus"), std::string::npos);
    }

    const MachineDesc grid = gridMachine();
    const Compiled on_grid = compile(kernelFir4(), grid);
    ASSERT_GT(on_grid.result.copies, 0);
    const std::string text =
        emitKernel(on_grid.result.loop, on_grid.result.schedule,
                   on_grid.allocation, grid);
    EXPECT_NE(text.find("via link"), std::string::npos);
}

TEST(Codegen, CarriedReadsShowRotatingOffset)
{
    const MachineDesc machine = unifiedGpMachine(8);
    const CompileResult result =
        compileUnified(kernelFirstOrderRecurrence(), machine);
    ASSERT_TRUE(result.success);
    const RegisterAllocation allocation =
        allocateRegisters(result.loop, result.schedule, machine);
    const std::string text = emitKernel(result.loop, result.schedule,
                                        allocation, machine);
    // acc reads itself one iteration back.
    EXPECT_NE(text.find("[-1]"), std::string::npos);
}

TEST(Codegen, PipelineHasPrologueKernelEpilogue)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const Compiled compiled = compile(kernelHydro(), machine);
    const std::string text =
        emitPipeline(compiled.result.loop, compiled.result.schedule,
                     compiled.allocation, machine, 2);
    EXPECT_NE(text.find("; prologue"), std::string::npos);
    EXPECT_NE(text.find("; steady state"), std::string::npos);
    EXPECT_NE(text.find("; epilogue"), std::string::npos);
    // Iteration tags appear in fill/drain code.
    EXPECT_NE(text.find("[i0]"), std::string::npos);
}

TEST(Codegen, MveKernelUnrollsByTheFactor)
{
    const MachineDesc machine = unifiedGpMachine(8);
    const CompileResult result =
        compileUnified(kernelFirstOrderRecurrence(), machine);
    ASSERT_TRUE(result.success);
    const RegisterAllocation allocation =
        allocateRegisters(result.loop, result.schedule, machine);
    const std::string text = emitMveKernel(
        result.loop, result.schedule, allocation, machine);
    EXPECT_NE(text.find("unrolled x" +
                        std::to_string(allocation.mveFactor)),
              std::string::npos);
    EXPECT_EQ(countOccurrences(text, "; unrolled copy "),
              static_cast<size_t>(allocation.mveFactor));
    // Each unrolled copy lists the full kernel once.
    EXPECT_EQ(countOccurrences(text, "fadd("),
              static_cast<size_t>(allocation.mveFactor));
}

TEST(Codegen, MveKernelNamesInstancesExplicitly)
{
    // A value with lifetime above II gets #instance suffixes.
    Dfg graph;
    const NodeId a = graph.addNode(Opcode::Load);
    const NodeId b = graph.addNode(Opcode::Store);
    graph.addEdge(a, b);
    const AnnotatedLoop loop = unifiedLoop(graph);
    Schedule schedule;
    schedule.ii = 2;
    schedule.startCycle = {0, 5};
    const MachineDesc machine = unifiedGpMachine(4);
    const RegisterAllocation allocation =
        allocateRegisters(loop, schedule, machine);
    ASSERT_EQ(allocation.mveFactor, 3);
    const std::string text =
        emitMveKernel(loop, schedule, allocation, machine);
    EXPECT_NE(text.find("#0"), std::string::npos);
    EXPECT_NE(text.find("#1"), std::string::npos);
    EXPECT_NE(text.find("#2"), std::string::npos);
}

TEST(Codegen, SingleStageLoopHasEmptyFill)
{
    // A loop whose schedule fits one stage needs no prologue ops.
    Dfg graph;
    graph.addNode(Opcode::IntAlu);
    const MachineDesc machine = unifiedGpMachine(8);
    const CompileResult result = compileUnified(graph, machine);
    ASSERT_TRUE(result.success);
    ASSERT_EQ(result.schedule.stageCount(), 1);
    const RegisterAllocation allocation =
        allocateRegisters(result.loop, result.schedule, machine);
    const std::string text = emitPipeline(
        result.loop, result.schedule, allocation, machine, 1);
    EXPECT_NE(text.find("; steady state"), std::string::npos);
}

} // namespace
} // namespace cams
