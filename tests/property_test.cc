/**
 * @file
 * Property-based sweeps: generated loops compiled on every paper
 * machine must satisfy the pipeline's invariants.
 *
 *  P1  the clustered pipeline terminates successfully;
 *  P2  the schedule passes the independent verifier;
 *  P3  the clustered II is never below the unified II;
 *  P4  the annotated loop is structurally valid, and removing its
 *      copies gives back exactly the original operations;
 *  P5  recurrences are never split when the clustered II matches the
 *      unified II on a machine whose copies have latency (a split
 *      would have raised RecMII above it);
 *  P6  assignment-phase MRT accounting is consistent: re-running
 *      assignment at the achieved II succeeds.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/recmii.hh"
#include "graph/scc.hh"
#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "regalloc/regalloc.hh"
#include "sched/stage.hh"
#include "sched/verifier.hh"
#include "sim/compare.hh"
#include "workload/suite.hh"

namespace cams
{
namespace
{

struct SweepParam
{
    const char *machineKind;
    int seedBase;
};

MachineDesc
machineFor(const std::string &kind)
{
    if (kind == "2c-gp")
        return busedGpMachine(2, 2, 1);
    if (kind == "4c-gp")
        return busedGpMachine(4, 4, 2);
    if (kind == "2c-fs")
        return busedFsMachine(2, 2, 1);
    if (kind == "4c-fs")
        return busedFsMachine(4, 4, 2);
    if (kind == "grid")
        return gridMachine();
    if (kind == "6c-gp")
        return busedGpMachine(6, 6, 3);
    if (kind == "8c-gp")
        return busedGpMachine(8, 7, 3);
    throw std::runtime_error("unknown machine kind");
}

class PipelineSweep
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(PipelineSweep, InvariantsHold)
{
    const auto [kind, seed_base] = GetParam();
    const MachineDesc machine = machineFor(kind);
    const MachineDesc unified = machine.unifiedEquivalent();
    const ResourceModel model(machine);

    for (int i = 0; i < 12; ++i) {
        const uint64_t seed = static_cast<uint64_t>(seed_base) * 1000 + i;
        const Dfg loop = generateLoop(seed);
        SCOPED_TRACE("seed " + std::to_string(seed) + " on " +
                     machine.name);

        const CompileResult base = compileUnified(loop, unified);
        ASSERT_TRUE(base.success); // unified must always compile

        const CompileResult clustered = compileClustered(loop, machine);
        ASSERT_TRUE(clustered.success); // P1

        std::string why;
        EXPECT_TRUE(verifySchedule(clustered.loop, model,
                                   clustered.schedule, &why))
            << why; // P2

        EXPECT_GE(clustered.ii, base.ii); // P3

        EXPECT_TRUE(clustered.loop.validate(machine, &why)) << why; // P4
        EXPECT_EQ(clustered.loop.numOriginalNodes, loop.numNodes());
        for (NodeId v = 0; v < loop.numNodes(); ++v) {
            EXPECT_EQ(clustered.loop.graph.node(v).op, loop.node(v).op);
            EXPECT_EQ(clustered.loop.graph.node(v).latency,
                      loop.node(v).latency);
        }
        for (NodeId v = loop.numNodes();
             v < clustered.loop.graph.numNodes(); ++v) {
            EXPECT_EQ(clustered.loop.graph.node(v).op, Opcode::Copy);
        }

        // P5: when the clustered II equals the unified II and that II
        // equals RecMII, no recurrence can have been split (each copy
        // adds a cycle to its recurrence).
        if (clustered.ii == base.ii && base.ii == recMii(loop)) {
            EXPECT_EQ(recMii(clustered.loop.graph), recMii(loop));
        }

        // P6: the pipelined execution computes exactly the sequential
        // loop's values (dynamic validation on the VLIW simulator).
        const EquivalenceReport equivalence = checkEquivalence(
            loop, clustered.loop, clustered.schedule, machine, 6);
        EXPECT_TRUE(equivalence.equivalent)
            << (equivalence.mismatches.empty()
                    ? ""
                    : equivalence.mismatches[0]);

        // P7: rotating register allocation of the schedule is sound.
        const RegisterAllocation allocation = allocateRegisters(
            clustered.loop, clustered.schedule, machine);
        EXPECT_TRUE(verifyAllocation(clustered.loop, clustered.schedule,
                                     allocation, &why))
            << why;

        // P8: stage scheduling preserves legality and the II while
        // never increasing total lifetime.
        const StageScheduleResult staged =
            stageSchedule(clustered.loop, clustered.schedule);
        EXPECT_LE(staged.lifetimeAfter, staged.lifetimeBefore);
        EXPECT_TRUE(verifySchedule(clustered.loop, model,
                                   staged.schedule, &why))
            << why;
    }
}

INSTANTIATE_TEST_SUITE_P(
    MachinesAndSeeds, PipelineSweep,
    ::testing::Combine(::testing::Values("2c-gp", "4c-gp", "2c-fs",
                                         "4c-fs", "grid", "6c-gp",
                                         "8c-gp"),
                       ::testing::Values(1, 2, 3)),
    [](const auto &info) {
        std::string name = std::string(std::get<0>(info.param)) + "_s" +
                           std::to_string(std::get<1>(info.param));
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

TEST(Determinism, RepeatedCompilesAreBitIdentical)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    for (int i = 0; i < 8; ++i) {
        const Dfg loop = generateLoop(12000 + i);
        const CompileResult first = compileClustered(loop, machine);
        const CompileResult second = compileClustered(loop, machine);
        ASSERT_EQ(first.success, second.success);
        if (!first.success)
            continue;
        EXPECT_EQ(first.ii, second.ii);
        EXPECT_EQ(first.copies, second.copies);
        EXPECT_EQ(first.schedule.startCycle, second.schedule.startCycle);
        for (NodeId v = 0; v < first.loop.graph.numNodes(); ++v) {
            EXPECT_EQ(first.loop.placement[v].cluster,
                      second.loop.placement[v].cluster);
        }
    }
}

TEST(Determinism, BugPolicyTerminatesAndVerifies)
{
    CompileOptions options;
    options.assign.policy = AssignPolicy::AcyclicBug;
    const MachineDesc machine = busedGpMachine(4, 4, 2);
    const ResourceModel model(machine);
    for (int i = 0; i < 12; ++i) {
        const Dfg loop = generateLoop(12100 + i);
        const CompileResult result =
            compileClustered(loop, machine, options);
        ASSERT_TRUE(result.success) << 12100 + i;
        std::string why;
        EXPECT_TRUE(
            verifySchedule(result.loop, model, result.schedule, &why))
            << why;
    }
}

class VariantSweep : public ::testing::TestWithParam<std::tuple<bool, bool>>
{
};

TEST_P(VariantSweep, AllVariantsTerminateAndVerify)
{
    const auto [iterative, heuristic] = GetParam();
    CompileOptions options;
    options.assign.iterative = iterative;
    options.assign.fullHeuristic = heuristic;

    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const ResourceModel model(machine);
    for (int i = 0; i < 15; ++i) {
        const Dfg loop = generateLoop(9000 + i);
        SCOPED_TRACE("loop " + std::to_string(9000 + i));
        const CompileResult result =
            compileClustered(loop, machine, options);
        ASSERT_TRUE(result.success);
        std::string why;
        EXPECT_TRUE(
            verifySchedule(result.loop, model, result.schedule, &why))
            << why;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, VariantSweep,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ? "iter" : "noiter") +
               (std::get<1>(info.param) ? "_heur" : "_simple");
    });

class SchedulerSweep : public ::testing::TestWithParam<SchedulerKind>
{
};

TEST_P(SchedulerSweep, BothSchedulersHandleGeneratedLoops)
{
    CompileOptions options;
    options.scheduler = GetParam();
    const MachineDesc machine = busedFsMachine(2, 2, 1);
    const ResourceModel model(machine);
    for (int i = 0; i < 15; ++i) {
        const Dfg loop = generateLoop(4000 + i);
        SCOPED_TRACE("loop " + std::to_string(4000 + i));
        const CompileResult result =
            compileClustered(loop, machine, options);
        ASSERT_TRUE(result.success);
        std::string why;
        EXPECT_TRUE(
            verifySchedule(result.loop, model, result.schedule, &why))
            << why;
    }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SchedulerSweep,
                         ::testing::Values(SchedulerKind::Swing,
                                           SchedulerKind::Iterative),
                         [](const auto &info) {
                             return info.param == SchedulerKind::Swing
                                        ? "swing"
                                        : "ims";
                         });

} // namespace
} // namespace cams
