/**
 * @file
 * Tests of the thread pool and the parallel batch-compilation engine:
 * bit-identical results across thread counts, clean error surfacing
 * from throwing jobs, and stats aggregation matching the serial sum.
 */

#include <atomic>
#include <stdexcept>

#include <gtest/gtest.h>

#include "machine/configs.hh"
#include "pipeline/batch.hh"
#include "support/threadpool.hh"
#include "workload/suite.hh"

namespace cams
{
namespace
{

/** Asserts two compile results are indistinguishable, field by field
 *  down to every start cycle and placement. */
void
expectSameResult(const CompileResult &a, const CompileResult &b)
{
    ASSERT_EQ(a.success, b.success);
    EXPECT_EQ(a.ii, b.ii);
    EXPECT_EQ(a.mii.mii, b.mii.mii);
    EXPECT_EQ(a.copies, b.copies);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.assignRetries, b.assignRetries);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.failure, b.failure);
    EXPECT_EQ(a.degraded, b.degraded);
    if (!a.success)
        return;
    EXPECT_EQ(a.schedule.ii, b.schedule.ii);
    EXPECT_EQ(a.schedule.startCycle, b.schedule.startCycle);
    ASSERT_EQ(a.loop.placement.size(), b.loop.placement.size());
    for (size_t i = 0; i < a.loop.placement.size(); ++i) {
        EXPECT_EQ(a.loop.placement[i].cluster,
                  b.loop.placement[i].cluster);
        EXPECT_EQ(a.loop.placement[i].copyDsts,
                  b.loop.placement[i].copyDsts);
    }
}

TEST(ThreadPool, RunsEveryPostedTask)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.post([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ThrowingTaskSurfacesWithoutDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    for (int i = 0; i < 10; ++i)
        pool.post([&completed] { ++completed; });
    pool.post([] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 10; ++i)
        pool.post([&completed] { ++completed; });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The queue drained despite the throwing task, and the pool is
    // still usable afterwards.
    EXPECT_EQ(completed.load(), 20);
    pool.post([&completed] { ++completed; });
    pool.wait();
    EXPECT_EQ(completed.load(), 21);
}

TEST(ThreadPool, DefaultThreadsHonorsEnvironment)
{
    setenv("CAMS_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 3);
    unsetenv("CAMS_JOBS");
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
}

TEST(Batch, ResultsIdenticalAcrossThreadCounts)
{
    const std::vector<Dfg> suite = buildSuite(24);
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const std::vector<CompileJob> jobs = clusteredJobs(suite, machine);

    const BatchOutcome one = BatchRunner::run(jobs, 1);
    const BatchOutcome two = BatchRunner::run(jobs, 2);
    const BatchOutcome eight = BatchRunner::run(jobs, 8);

    ASSERT_EQ(one.results.size(), suite.size());
    ASSERT_EQ(two.results.size(), suite.size());
    ASSERT_EQ(eight.results.size(), suite.size());
    for (size_t i = 0; i < suite.size(); ++i) {
        expectSameResult(one.results[i], two.results[i]);
        expectSameResult(one.results[i], eight.results[i]);
    }
}

TEST(Batch, ResultsComeBackInInputOrder)
{
    const std::vector<Dfg> suite = buildSuite(16);
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const BatchOutcome batch =
        BatchRunner::run(clusteredJobs(suite, machine), 8);
    for (size_t i = 0; i < suite.size(); ++i) {
        if (!batch.results[i].success)
            continue;
        // The annotated loop keeps the input graph's name, which ties
        // each slot back to the job that produced it.
        EXPECT_EQ(batch.results[i].loop.graph.name(), suite[i].name());
    }
}

TEST(Batch, MatchesDirectSerialCompilation)
{
    const std::vector<Dfg> suite = buildSuite(12);
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const BatchOutcome batch =
        BatchRunner::run(clusteredJobs(suite, machine), 8);
    for (size_t i = 0; i < suite.size(); ++i) {
        const CompileResult serial = compileClustered(suite[i], machine);
        expectSameResult(serial, batch.results[i]);
    }
}

TEST(Batch, StatsTotalsMatchSerialSum)
{
    const std::vector<Dfg> suite = buildSuite(24);
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const BatchOutcome batch =
        BatchRunner::run(clusteredJobs(suite, machine), 8);

    long attempts = 0;
    long retries = 0;
    long evictions = 0;
    long copies = 0;
    int succeeded = 0;
    for (const Dfg &loop : suite) {
        const CompileResult serial = compileClustered(loop, machine);
        attempts += serial.attempts;
        retries += serial.assignRetries;
        evictions += serial.evictions;
        copies += serial.copies;
        if (serial.success)
            ++succeeded;
    }

    EXPECT_EQ(batch.stats.jobs, static_cast<int>(suite.size()));
    EXPECT_EQ(batch.stats.succeeded, succeeded);
    EXPECT_EQ(batch.stats.failed,
              static_cast<int>(suite.size()) - succeeded);
    EXPECT_EQ(batch.stats.iiAttempts, attempts);
    EXPECT_EQ(batch.stats.assignRetries, retries);
    EXPECT_EQ(batch.stats.evictions, evictions);
    EXPECT_EQ(batch.stats.copies, copies);
    EXPECT_EQ(batch.stats.threads, 8);
    ASSERT_EQ(batch.jobMillis.size(), suite.size());
    EXPECT_GT(batch.stats.wallMillis, 0.0);
}

TEST(Batch, MalformedJobThrowsWithoutDeadlock)
{
    const std::vector<Dfg> suite = buildSuite(4);
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    std::vector<CompileJob> jobs = clusteredJobs(suite, machine);
    jobs[2].loop = nullptr; // poisoned job
    EXPECT_THROW(BatchRunner::run(jobs, 2), std::invalid_argument);
}

TEST(Batch, UnifiedJobsProduceBaselineResults)
{
    const std::vector<Dfg> suite = buildSuite(8);
    const MachineDesc unified = unifiedGpMachine(8);
    const BatchOutcome batch =
        BatchRunner::run(unifiedJobs(suite, unified), 4);
    for (size_t i = 0; i < suite.size(); ++i) {
        const CompileResult serial = compileUnified(suite[i], unified);
        expectSameResult(serial, batch.results[i]);
        EXPECT_EQ(batch.results[i].copies, 0);
    }
}

TEST(Batch, StatsRenderAsJson)
{
    BatchStats stats;
    stats.jobs = 2;
    stats.succeeded = 1;
    stats.failed = 1;
    stats.threads = 4;
    stats.iiAttempts = 7;
    const std::string json = stats.toJson();
    EXPECT_NE(json.find("\"jobs\":2"), std::string::npos);
    EXPECT_NE(json.find("\"succeeded\":1"), std::string::npos);
    EXPECT_NE(json.find("\"threads\":4"), std::string::npos);
    EXPECT_NE(json.find("\"ii_attempts\":7"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

} // namespace
} // namespace cams
