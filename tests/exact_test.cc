/**
 * @file
 * Tests of the exact backend: the CDCL core (unit propagation,
 * conflict learning, restart schedule termination, deterministic
 * conflict budgets), the joint assignment+scheduling encoder's
 * round-trip through the independent verifier, and the driver's
 * backend protocol (exact optimality, race tighten/certify, the
 * heuristic default leaving the arm untouched).
 */

#include <gtest/gtest.h>

#include <vector>

#include "exact/encode.hh"
#include "exact/exact.hh"
#include "exact/sat.hh"
#include "graph/dfg.hh"
#include "machine/configs.hh"
#include "mrt/mrt.hh"
#include "pipeline/driver.hh"
#include "sched/mii.hh"
#include "sched/verifier.hh"
#include "workload/suite.hh"

namespace cams
{
namespace
{

// ---------------------------------------------------------------- SAT

TEST(SatSolver, EmptyInstanceIsSat)
{
    SatSolver solver;
    EXPECT_EQ(solver.solve({}), SatStatus::Sat);
}

TEST(SatSolver, UnitPropagationChains)
{
    SatSolver solver;
    const SatVar a = solver.newVar();
    const SatVar b = solver.newVar();
    const SatVar c = solver.newVar();
    solver.addClause(mkLit(a));                       // a
    solver.addClause(~mkLit(a), mkLit(b));            // a -> b
    solver.addClause(~mkLit(b), mkLit(c));            // b -> c
    EXPECT_EQ(solver.solve({}), SatStatus::Sat);
    EXPECT_EQ(solver.value(a), 1);
    EXPECT_EQ(solver.value(b), 1);
    EXPECT_EQ(solver.value(c), 1);
    // The chain resolves at the root: no search was needed.
    EXPECT_EQ(solver.stats().decisions, 0);
}

TEST(SatSolver, RootContradictionIsUnsat)
{
    SatSolver solver;
    const SatVar a = solver.newVar();
    solver.addClause(mkLit(a));
    solver.addClause(~mkLit(a));
    EXPECT_FALSE(solver.okay());
    EXPECT_EQ(solver.solve({}), SatStatus::Unsat);
}

TEST(SatSolver, TinyUnsatNeedsConflictAnalysis)
{
    // All four clauses over {a, b}: UNSAT only via learning.
    SatSolver solver;
    const SatVar a = solver.newVar();
    const SatVar b = solver.newVar();
    solver.addClause(mkLit(a), mkLit(b));
    solver.addClause(mkLit(a), ~mkLit(b));
    solver.addClause(~mkLit(a), mkLit(b));
    solver.addClause(~mkLit(a), ~mkLit(b));
    EXPECT_EQ(solver.solve({}), SatStatus::Unsat);
    EXPECT_GT(solver.stats().conflicts, 0);
}

TEST(SatSolver, SatisfiableAfterLearning)
{
    // XOR-ish structure with one satisfying corner.
    SatSolver solver;
    std::vector<SatVar> v;
    for (int i = 0; i < 6; ++i)
        v.push_back(solver.newVar());
    solver.addClause(mkLit(v[0]), mkLit(v[1]), mkLit(v[2]));
    solver.addClause(~mkLit(v[0]), ~mkLit(v[1]));
    solver.addClause(~mkLit(v[0]), ~mkLit(v[2]));
    solver.addClause(~mkLit(v[1]), ~mkLit(v[2]));
    solver.addClause(mkLit(v[3]), mkLit(v[4]));
    solver.addClause(~mkLit(v[3]), mkLit(v[5]));
    EXPECT_EQ(solver.solve({}), SatStatus::Sat);
    // Model check: exactly one of v0..v2 true.
    const int ones =
        solver.value(v[0]) + solver.value(v[1]) + solver.value(v[2]);
    EXPECT_EQ(ones, 1);
    EXPECT_TRUE(solver.value(v[3]) == 1 || solver.value(v[4]) == 1);
}

/** Pigeonhole principle php(n+1, n): n+1 pigeons, n holes, UNSAT and
 *  exponentially hard for resolution -- a dense conflict source. */
void
encodePigeonhole(SatSolver &solver, int pigeons, int holes)
{
    std::vector<std::vector<SatLit>> at(pigeons);
    for (int p = 0; p < pigeons; ++p)
        for (int h = 0; h < holes; ++h)
            at[p].push_back(mkLit(solver.newVar()));
    for (int p = 0; p < pigeons; ++p)
        solver.addClause(at[p]); // every pigeon sits somewhere
    for (int h = 0; h < holes; ++h)
        for (int p = 0; p < pigeons; ++p)
            for (int q = p + 1; q < pigeons; ++q)
                solver.addClause(~at[p][h], ~at[q][h]);
}

TEST(SatSolver, PigeonholeUnsatSurvivesManyRestarts)
{
    // Regression: the Luby restart schedule must terminate past its
    // 7th restart (a subtraction bug once turned luby(7) into an
    // infinite loop). php(8,7) reliably burns thousands of conflicts
    // and well over seven restarts.
    SatSolver solver;
    encodePigeonhole(solver, 8, 7);
    EXPECT_EQ(solver.solve({}), SatStatus::Unsat);
    EXPECT_GT(solver.stats().restarts, 7);
}

TEST(SatSolver, ConflictBudgetIsDeterministic)
{
    auto run = [](long budget) {
        SatSolver solver;
        encodePigeonhole(solver, 8, 7);
        SatBudget b;
        b.maxConflicts = budget;
        const SatStatus status = solver.solve(b);
        return std::make_pair(status, solver.stats().conflicts);
    };
    const auto [status, conflicts] = run(200);
    EXPECT_EQ(status, SatStatus::Unknown);
    EXPECT_EQ(conflicts, 200);
    // Same instance, same budget => identical cancellation point.
    const auto [status2, conflicts2] = run(200);
    EXPECT_EQ(status2, SatStatus::Unknown);
    EXPECT_EQ(conflicts2, 200);
}

// ------------------------------------------------------------ encoder

/** A 2-cluster-friendly loop: two parallel chains joined at the end,
 *  with a recurrence to pin RecMII. */
Dfg
twoChainLoop()
{
    Dfg graph;
    graph.setName("two_chain");
    const NodeId a0 = graph.addNode(Opcode::Load);
    const NodeId a1 = graph.addNode(Opcode::IntAlu);
    const NodeId a2 = graph.addNode(Opcode::FpMult);
    const NodeId b0 = graph.addNode(Opcode::Load);
    const NodeId b1 = graph.addNode(Opcode::IntAlu);
    const NodeId b2 = graph.addNode(Opcode::FpAdd);
    const NodeId join = graph.addNode(Opcode::IntAlu);
    const NodeId store = graph.addNode(Opcode::Store);
    graph.addEdge(a0, a1);
    graph.addEdge(a1, a2);
    graph.addEdge(a2, join);
    graph.addEdge(b0, b1);
    graph.addEdge(b1, b2);
    graph.addEdge(b2, join);
    graph.addEdge(join, store);
    graph.addEdge(join, a1, -1, 1); // recurrence through chain A
    return graph;
}

TEST(ExactEncoder, RoundTripsThroughVerifier)
{
    const Dfg graph = twoChainLoop();
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const ResourceModel model(machine);
    const MiiInfo mii =
        computeMii(graph, machine.unifiedEquivalent());
    ASSERT_GE(mii.mii, 1);

    ExactOptions options;
    ExactDecision decision;
    int ii = mii.mii;
    for (; ii <= mii.mii + 8; ++ii) {
        decision = exactDecideAtIi(graph, model, ii, options);
        ASSERT_NE(decision.verdict, ExactVerdict::Unsupported)
            << decision.detail;
        if (decision.verdict == ExactVerdict::Sat)
            break;
        ASSERT_EQ(decision.verdict, ExactVerdict::Unsat);
    }
    ASSERT_EQ(decision.verdict, ExactVerdict::Sat);

    // The decision is already verifier-approved internally; prove it
    // again here, independently.
    std::string why;
    EXPECT_TRUE(decision.loop.validate(machine, &why)) << why;
    EXPECT_TRUE(
        verifySchedule(decision.loop, model, decision.schedule, &why))
        << why;
    // Every original node must be placed and scheduled.
    EXPECT_GE(decision.loop.graph.numNodes(), graph.numNodes());
    EXPECT_EQ(decision.schedule.startCycle.size(),
              static_cast<size_t>(decision.loop.graph.numNodes()));
}

TEST(ExactEncoder, MatchesUnifiedMiiOnSuitePrefix)
{
    // On the reference 2-cluster machine the exact II can never beat
    // the unified-machine MII (it is a relaxation); sanity-check the
    // encoder agrees over a suite prefix.
    const std::vector<Dfg> suite = buildSuite(8, defaultSuiteSeed);
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const ResourceModel model(machine);
    for (const Dfg &graph : suite) {
        const MiiInfo mii =
            computeMii(graph, machine.unifiedEquivalent());
        if (mii.mii <= 1)
            continue; // no II below MII to probe
        const ExactDecision below = exactDecideAtIi(
            graph, model, mii.mii - 1, ExactOptions{});
        EXPECT_NE(below.verdict, ExactVerdict::Sat)
            << graph.name() << " scheduled below the MII";
    }
}

TEST(ExactEncoder, BudgetCancellationReportsBudget)
{
    const Dfg graph = twoChainLoop();
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const ResourceModel model(machine);
    const MiiInfo mii =
        computeMii(graph, machine.unifiedEquivalent());
    ExactOptions options;
    options.conflictBudget = 1; // nothing real fits in one conflict
    const ExactDecision decision =
        exactDecideAtIi(graph, model, mii.mii, options);
    // Either the instance solved without a single conflict (fine) or
    // the budget fired and the verdict says so honestly.
    if (decision.verdict != ExactVerdict::Sat) {
        EXPECT_EQ(decision.verdict, ExactVerdict::Budget);
        EXPECT_FALSE(decision.detail.empty());
    }
}

TEST(ExactEncoder, NodeLimitIsUnsupported)
{
    const Dfg graph = twoChainLoop();
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const ResourceModel model(machine);
    ExactOptions options;
    options.nodeLimit = 2;
    const ExactDecision decision =
        exactDecideAtIi(graph, model, 4, options);
    EXPECT_EQ(decision.verdict, ExactVerdict::Unsupported);
    EXPECT_EQ(decision.detail, "node_limit");
}

// ------------------------------------------------------------- driver

TEST(ExactBackend, NamesRoundTrip)
{
    for (const CompileBackend backend :
         {CompileBackend::Heuristic, CompileBackend::Exact,
          CompileBackend::Race}) {
        CompileBackend parsed = CompileBackend::Heuristic;
        ASSERT_TRUE(
            parseCompileBackend(compileBackendName(backend), parsed));
        EXPECT_EQ(parsed, backend);
    }
    CompileBackend parsed;
    EXPECT_FALSE(parseCompileBackend("sat", parsed));
}

TEST(ExactBackend, HeuristicDefaultLeavesArmNotRun)
{
    const Dfg graph = twoChainLoop();
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    const CompileResult result = compileClustered(graph, machine);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.exact.outcome, ExactOutcome::NotRun);
    EXPECT_EQ(result.exact.probes, 0);
}

TEST(ExactBackend, ExactModeIsOptimalAndVerified)
{
    const Dfg graph = twoChainLoop();
    const MachineDesc machine = busedGpMachine(2, 2, 1);

    CompileOptions heuristic;
    const CompileResult base =
        compileClustered(graph, machine, heuristic);
    ASSERT_TRUE(base.success);

    CompileOptions exact;
    exact.backend = CompileBackend::Exact;
    const CompileResult result =
        compileClustered(graph, machine, exact);
    ASSERT_TRUE(result.success) << result.failureDetail;
    EXPECT_EQ(result.exact.outcome, ExactOutcome::Sat);
    EXPECT_EQ(result.degraded, DegradeLevel::None);
    // Optimality: never worse than the heuristic, never below MII.
    EXPECT_LE(result.ii, base.ii);
    EXPECT_GE(result.ii, result.mii.mii);
    EXPECT_GT(result.exact.probes, 0);
}

TEST(ExactBackend, RaceTightensOrCertifies)
{
    const std::vector<Dfg> suite = buildSuite(12, defaultSuiteSeed);
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    CompileOptions options;
    options.backend = CompileBackend::Race;
    for (const Dfg &graph : suite) {
        const CompileResult result =
            compileClustered(graph, machine, options);
        ASSERT_TRUE(result.success) << graph.name();
        if (result.degraded != DegradeLevel::None)
            continue;
        // The race arm must reach a conclusion on these small loops:
        // tightened, certified, or an explicit budget/unsupported.
        if (result.exact.tightened) {
            EXPECT_EQ(result.exact.outcome, ExactOutcome::Sat);
            EXPECT_LT(result.ii, result.exact.heuristicIi);
        } else if (result.exact.certified) {
            EXPECT_EQ(result.exact.outcome, ExactOutcome::Unsat);
            EXPECT_EQ(result.ii, result.exact.heuristicIi);
        } else {
            EXPECT_TRUE(result.exact.outcome ==
                            ExactOutcome::Timeout ||
                        result.exact.outcome ==
                            ExactOutcome::Unsupported)
                << graph.name() << ": outcome "
                << exactOutcomeName(result.exact.outcome);
        }
    }
}

TEST(ExactBackend, RaceNeverWorseThanHeuristic)
{
    const std::vector<Dfg> suite = buildSuite(12, defaultSuiteSeed);
    const MachineDesc machine = busedGpMachine(4, 4, 2);
    CompileOptions heuristic;
    CompileOptions race;
    race.backend = CompileBackend::Race;
    for (const Dfg &graph : suite) {
        const CompileResult base =
            compileClustered(graph, machine, heuristic);
        const CompileResult raced =
            compileClustered(graph, machine, race);
        ASSERT_EQ(base.success, raced.success) << graph.name();
        if (!base.success || base.degraded != DegradeLevel::None)
            continue;
        EXPECT_LE(raced.ii, base.ii) << graph.name();
    }
}

} // namespace
} // namespace cams
