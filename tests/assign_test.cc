/**
 * @file
 * Unit and integration tests for the cluster assignment engine:
 * feasibility, copy insertion, SCC cohesion, annotated-loop
 * structural validity, eviction behavior, and the four variants.
 */

#include <gtest/gtest.h>

#include "assign/assigner.hh"
#include "graph/builder.hh"
#include "graph/recmii.hh"
#include "machine/configs.hh"
#include "workload/kernels.hh"

namespace cams
{
namespace
{

AssignResult
assign(const Dfg &graph, const MachineDesc &machine, int ii,
       AssignOptions options = {})
{
    const ResourceModel model(machine);
    return ClusterAssigner(model, options).run(graph, ii);
}

TEST(Assign, SingleNodeTrivial)
{
    Dfg graph = DfgBuilder("t").op("a", Opcode::IntAlu).build();
    const auto result = assign(graph, busedGpMachine(2, 2, 1), 1);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.copies, 0);
    EXPECT_EQ(result.loop.graph.numNodes(), 1);
}

TEST(Assign, ChainStaysOnOneClusterWhenItFits)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::FpAdd)
                    .op("c", Opcode::Store)
                    .chain({"a", "b", "c"})
                    .build();
    const auto result = assign(graph, busedGpMachine(2, 2, 1), 2);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.copies, 0);
    EXPECT_EQ(result.clusterOf[0], result.clusterOf[1]);
    EXPECT_EQ(result.clusterOf[1], result.clusterOf[2]);
}

TEST(Assign, OverflowForcesSplitWithCopies)
{
    // 8 independent producers feeding one consumer on a 2x1-GP
    // machine at II 4: each cluster holds 4 ops, so a split and at
    // least one copy are inevitable.
    DfgBuilder b("t");
    for (int i = 0; i < 7; ++i)
        b.op("p" + std::to_string(i), Opcode::IntAlu);
    b.op("sink", Opcode::IntAlu);
    for (int i = 0; i < 7; ++i)
        b.flow("p" + std::to_string(i), "sink");

    MachineDesc machine = busedGpMachine(2, 2, 1);
    for (auto &cluster : machine.clusters)
        cluster.gpUnits = 1;
    machine.name = "2c-1gp";

    const auto result = assign(b.build(), machine, 4);
    ASSERT_TRUE(result.success);
    EXPECT_GT(result.copies, 0);
    std::string why;
    EXPECT_TRUE(result.loop.validate(machine, &why)) << why;
}

TEST(Assign, InfeasibleIiFails)
{
    // 10 ops on a machine with total width 2 cannot fit in II 4.
    DfgBuilder b("t");
    for (int i = 0; i < 10; ++i)
        b.op("p" + std::to_string(i), Opcode::IntAlu);
    MachineDesc machine = busedGpMachine(2, 2, 1);
    for (auto &cluster : machine.clusters)
        cluster.gpUnits = 1;
    machine.name = "2c-1gp";
    const auto result = assign(b.build(), machine, 4);
    EXPECT_FALSE(result.success);
}

TEST(Assign, SccKeptTogether)
{
    Dfg graph = kernelTridiag();
    const auto result = assign(graph, busedGpMachine(2, 2, 1), 4);
    ASSERT_TRUE(result.success);
    // sub (id 2) and mul (id 3) form the recurrence.
    EXPECT_EQ(result.clusterOf[2], result.clusterOf[3]);
}

TEST(Assign, AnnotatedGraphPreservesRecMiiWhenSccsIntact)
{
    Dfg graph = kernelTridiag();
    const int before = recMii(graph);
    const auto result = assign(graph, busedGpMachine(2, 2, 1), before);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(recMii(result.loop.graph), before);
}

TEST(Assign, CopiesAnnotatedWithRoutes)
{
    DfgBuilder b("t");
    for (int i = 0; i < 7; ++i)
        b.op("p" + std::to_string(i), Opcode::IntAlu);
    b.op("sink", Opcode::IntAlu);
    for (int i = 0; i < 7; ++i)
        b.flow("p" + std::to_string(i), "sink");
    MachineDesc machine = busedGpMachine(2, 2, 2);
    for (auto &cluster : machine.clusters)
        cluster.gpUnits = 2;
    machine.name = "2c-2gp-2p";

    // At II 2 the machine has exactly 8 slots, so the 8 ops must
    // split across clusters and the sink needs copies.
    const auto result = assign(b.build(), machine, 2);
    ASSERT_TRUE(result.success);
    ASSERT_GT(result.copies, 0);
    for (NodeId v = result.loop.numOriginalNodes;
         v < result.loop.graph.numNodes(); ++v) {
        EXPECT_EQ(result.loop.graph.node(v).op, Opcode::Copy);
        EXPECT_FALSE(result.loop.placement[v].copyDsts.empty());
    }
}

TEST(Assign, BroadcastServesMultipleConsumersWithOneCopy)
{
    // One producer read by consumers pinned (by capacity) to other
    // clusters on a 4-cluster broadcast machine.
    DfgBuilder b("t");
    b.op("src", Opcode::IntAlu);
    for (int i = 0; i < 15; ++i)
        b.op("c" + std::to_string(i), Opcode::IntAlu);
    for (int i = 0; i < 15; ++i)
        b.flow("src", "c" + std::to_string(i));
    const auto result = assign(b.build(), busedGpMachine(4, 4, 2), 1);
    ASSERT_TRUE(result.success);
    // At II 1 every cluster holds exactly its 4 ops, so src's value
    // must reach the three other clusters -- via exactly one
    // broadcast copy.
    EXPECT_EQ(result.copies, 1);
    const NodeId copy = result.loop.numOriginalNodes;
    EXPECT_EQ(result.loop.placement[copy].copyDsts.size(), 3u);
}

TEST(Assign, GridUsesHopChains)
{
    // Force a diagonal transfer on the grid: fill the source cluster
    // and its neighbors so a consumer lands diagonally.
    Dfg graph = DfgBuilder("t")
                    .op("ld", Opcode::Load)
                    .op("a1", Opcode::IntAlu)
                    .op("f1", Opcode::FpAdd)
                    .op("ld2", Opcode::Load)
                    .op("a2", Opcode::IntAlu)
                    .op("f2", Opcode::FpAdd)
                    .op("ld3", Opcode::Load)
                    .op("a3", Opcode::IntAlu)
                    .op("f3", Opcode::FpAdd)
                    .op("ld4", Opcode::Load)
                    .op("a4", Opcode::IntAlu)
                    .op("f4", Opcode::FpAdd)
                    .flow("ld", "a1")
                    .flow("ld", "a2")
                    .flow("ld", "a3")
                    .flow("ld", "a4")
                    .flow("a1", "f1")
                    .flow("a2", "f2")
                    .flow("a3", "f3")
                    .flow("a4", "f4")
                    .flow("ld2", "a2")
                    .flow("ld3", "a3")
                    .flow("ld4", "a4")
                    .build();
    const auto result = assign(graph, gridMachine(), 1);
    ASSERT_TRUE(result.success);
    // At II 1 each grid cluster holds exactly 1 mem + 1 int + 1 fp op,
    // so all four clusters are used and ld's value must reach the
    // diagonal cluster: a spanning hop tree of at least 3 copies with
    // at least one chained hop (a copy fed by another copy).
    EXPECT_GE(result.copies, 3);
    bool chained = false;
    for (NodeId v = result.loop.numOriginalNodes;
         v < result.loop.graph.numNodes(); ++v) {
        for (NodeId pred : result.loop.graph.predecessors(v)) {
            if (result.loop.isCopy(pred))
                chained = true;
        }
    }
    EXPECT_TRUE(chained) << "no multi-hop copy chain was needed?";
    std::string why;
    EXPECT_TRUE(result.loop.validate(gridMachine(), &why)) << why;
}

TEST(Assign, NonIterativeFailsWhereIterativeSucceeds)
{
    // A workload tight enough that greedy placement needs repair.
    DfgBuilder b("t");
    for (int i = 0; i < 4; ++i) {
        b.op("l" + std::to_string(i), Opcode::Load);
        b.op("m" + std::to_string(i), Opcode::FpMult);
        b.op("s" + std::to_string(i), Opcode::Store);
        b.flow("l" + std::to_string(i), "m" + std::to_string(i));
        b.flow("m" + std::to_string(i), "s" + std::to_string(i));
    }
    Dfg graph = b.build();
    const MachineDesc machine = busedFsMachine(4, 4, 2);
    AssignOptions iterative;
    AssignOptions greedy;
    greedy.iterative = false;
    // Both may succeed here; the iterative one must never do worse.
    const auto a = assign(graph, machine, 2, iterative);
    const auto c = assign(graph, machine, 2, greedy);
    EXPECT_TRUE(a.success || !c.success);
}

TEST(Assign, RejectsGraphWithCopies)
{
    Dfg graph;
    graph.addNode(Opcode::Copy);
    const ResourceModel model(busedGpMachine(2, 2, 1));
    ClusterAssigner assigner(model);
    EXPECT_DEATH({ assigner.run(graph, 4); }, "must not contain copies");
}

TEST(Assign, AllVariantsProduceValidAnnotations)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    for (bool iterative : {false, true}) {
        for (bool heuristic : {false, true}) {
            AssignOptions options;
            options.iterative = iterative;
            options.fullHeuristic = heuristic;
            for (const Dfg &kernel : allKernels()) {
                const int ii = std::max(recMii(kernel), 2);
                const auto result = assign(kernel, machine, ii, options);
                if (!result.success)
                    continue;
                std::string why;
                EXPECT_TRUE(result.loop.validate(machine, &why))
                    << kernel.name() << ": " << why;
            }
        }
    }
}

TEST(UnifiedLoop, WrapsWithoutCopies)
{
    Dfg graph = kernelHydro();
    const AnnotatedLoop loop = unifiedLoop(graph);
    EXPECT_EQ(loop.numCopies(), 0);
    EXPECT_EQ(loop.numOriginalNodes, graph.numNodes());
    std::string why;
    EXPECT_TRUE(loop.validate(unifiedGpMachine(8), &why)) << why;
}

} // namespace
} // namespace cams
