/**
 * @file
 * Tests for the machine-description text format.
 */

#include <gtest/gtest.h>

#include "machine/configs.hh"
#include "machine/machinetext.hh"

namespace cams
{
namespace
{

TEST(MachineText, ParseBusedGp)
{
    const std::string text = "machine demo\n"
                             "interconnect bus\n"
                             "buses 2\n"
                             "cluster gp 4 ports 1 1\n"
                             "cluster gp 4 ports 1 1\n";
    MachineDesc machine;
    std::string error;
    ASSERT_TRUE(parseMachine(text, machine, error)) << error;
    EXPECT_EQ(machine.name, "demo");
    EXPECT_EQ(machine.numClusters(), 2);
    EXPECT_EQ(machine.numBuses, 2);
    EXPECT_TRUE(machine.cluster(0).usesGpPool());
    EXPECT_EQ(machine.cluster(1).readPorts, 1);
}

TEST(MachineText, ParseGrid)
{
    const std::string text = "machine grid\n"
                             "interconnect p2p\n"
                             "cluster fs 1 1 1 ports 2 2\n"
                             "cluster fs 1 1 1 ports 2 2\n"
                             "cluster fs 1 1 1 ports 2 2\n"
                             "cluster fs 1 1 1 ports 2 2\n"
                             "link 0 1\nlink 2 3\nlink 0 2\nlink 1 3\n";
    MachineDesc machine;
    std::string error;
    ASSERT_TRUE(parseMachine(text, machine, error)) << error;
    EXPECT_EQ(machine.interconnect, InterconnectKind::PointToPoint);
    EXPECT_EQ(machine.links.size(), 4u);
    EXPECT_EQ(machine.fuCount(2, FuClass::Float), 1);
}

TEST(MachineText, RoundTripPaperConfigs)
{
    for (const MachineDesc &machine :
         {busedGpMachine(2, 2, 1), busedGpMachine(4, 4, 2),
          busedFsMachine(2, 2, 1), gridMachine(),
          unifiedGpMachine(8)}) {
        const std::string text = serializeMachine(machine);
        MachineDesc parsed;
        std::string error;
        ASSERT_TRUE(parseMachine(text, parsed, error))
            << machine.name << ": " << error;
        EXPECT_EQ(parsed.numClusters(), machine.numClusters());
        EXPECT_EQ(parsed.numBuses, machine.numBuses);
        EXPECT_EQ(parsed.links.size(), machine.links.size());
        EXPECT_EQ(serializeMachine(parsed), text);
    }
}

TEST(MachineText, CommentsAndBlanksIgnored)
{
    const std::string text = "# a machine\n"
                             "\n"
                             "machine m   # named m\n"
                             "cluster gp 8 ports 0 0\n";
    MachineDesc machine;
    std::string error;
    ASSERT_TRUE(parseMachine(text, machine, error)) << error;
    EXPECT_EQ(machine.totalWidth(), 8);
}

TEST(MachineText, Rejections)
{
    MachineDesc machine;
    std::string error;

    EXPECT_FALSE(parseMachine("", machine, error));
    EXPECT_FALSE(parseMachine("cluster gp x ports 1 1\n", machine,
                              error));
    EXPECT_FALSE(parseMachine("bogus 3\n", machine, error));
    EXPECT_FALSE(parseMachine("interconnect ring\n", machine, error));
    // Multi-cluster bus machine without buses.
    EXPECT_FALSE(parseMachine("cluster gp 4 ports 1 1\n"
                              "cluster gp 4 ports 1 1\n",
                              machine, error));
    // Link to an undeclared cluster.
    EXPECT_FALSE(parseMachine("interconnect p2p\n"
                              "cluster gp 4 ports 1 1\n"
                              "cluster gp 4 ports 1 1\n"
                              "link 0 7\n",
                              machine, error));
    // Buses on a p2p machine.
    EXPECT_FALSE(parseMachine("interconnect p2p\n"
                              "buses 2\n"
                              "cluster gp 4 ports 1 1\n"
                              "cluster gp 4 ports 1 1\n"
                              "link 0 1\n",
                              machine, error));
    // Links on a bus machine.
    EXPECT_FALSE(parseMachine("buses 1\n"
                              "cluster gp 4 ports 1 1\n"
                              "cluster gp 4 ports 1 1\n"
                              "link 0 1\n",
                              machine, error));
}

TEST(MachineText, ErrorsCarryLineNumbers)
{
    MachineDesc machine;
    std::string error;
    EXPECT_FALSE(parseMachine("machine ok\nbroken here\n", machine,
                              error));
    EXPECT_NE(error.find("line 2"), std::string::npos);
}

} // namespace
} // namespace cams
