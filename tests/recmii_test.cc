/**
 * @file
 * Unit tests for the RecMII solver, including the paper's Section 3
 * example (RecMII = 4).
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "graph/recmii.hh"

namespace cams
{
namespace
{

/** The Figure 6 graph: A->B->C->D, D -(d1)-> B, D->E->F; C has lat 2. */
Dfg
paperExample()
{
    return DfgBuilder("fig6")
        .op("A", Opcode::IntAlu)
        .op("B", Opcode::IntAlu)
        .op("C", Opcode::IntAlu, 2)
        .op("D", Opcode::IntAlu)
        .op("E", Opcode::IntAlu)
        .op("F", Opcode::IntAlu)
        .chain({"A", "B", "C", "D", "E", "F"})
        .carried("D", "B", 1)
        .build();
}

TEST(RecMii, AcyclicIsOne)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::FpMult)
                    .flow("a", "b")
                    .build();
    EXPECT_EQ(recMii(graph), 1);
}

TEST(RecMii, PaperExampleIsFour)
{
    // Cycle B -> C -> D -> B: (1 + 2 + 1) / 1 = 4.
    EXPECT_EQ(recMii(paperExample()), 4);
}

TEST(RecMii, SelfLoopLatencyOverDistance)
{
    Dfg graph = DfgBuilder("t")
                    .op("x", Opcode::FpMult) // lat 3
                    .carried("x", "x", 1)
                    .build();
    EXPECT_EQ(recMii(graph), 3);

    Dfg relaxed = DfgBuilder("t2")
                      .op("x", Opcode::FpMult)
                      .carried("x", "x", 2)
                      .build();
    EXPECT_EQ(recMii(relaxed), 2); // ceil(3/2)
}

TEST(RecMii, DistanceTwoHalvesTheBound)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::FpAdd)
                    .op("b", Opcode::FpMult)
                    .flow("a", "b")
                    .carried("b", "a", 2)
                    .build();
    // (1 + 3) / 2 = 2.
    EXPECT_EQ(recMii(graph), 2);
}

TEST(RecMii, MaxOverMultipleCycles)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::FpAdd)
                    .op("b", Opcode::FpAdd)
                    .op("c", Opcode::FpDiv) // lat 9
                    .flow("a", "b")
                    .carried("b", "a", 1) // cycle: 2/1 = 2
                    .carried("c", "c", 1) // cycle: 9/1 = 9
                    .build();
    EXPECT_EQ(recMii(graph), 9);
}

TEST(RecMii, NestedCyclesInOneScc)
{
    // Inner cycle b<->c and outer cycle a->b->c->d->a.
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::IntAlu)
                    .op("b", Opcode::IntAlu)
                    .op("c", Opcode::IntAlu)
                    .op("d", Opcode::IntAlu)
                    .chain({"a", "b", "c", "d"})
                    .carried("c", "b", 1) // 2/1 = 2
                    .carried("d", "a", 2) // 4/2 = 2
                    .build();
    EXPECT_EQ(recMii(graph), 2);
}

TEST(RecMii, CustomEdgeLatency)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::IntAlu)
                    .op("b", Opcode::IntAlu)
                    .flow("a", "b", 5)
                    .carried("b", "a", 1, 5)
                    .build();
    EXPECT_EQ(recMii(graph), 10);
}

TEST(RecMii, PositiveCyclePredicateMonotone)
{
    Dfg graph = paperExample();
    const std::vector<NodeId> scc = {1, 2, 3}; // B, C, D
    EXPECT_TRUE(hasPositiveCycle(graph, scc, 3));
    EXPECT_FALSE(hasPositiveCycle(graph, scc, 4));
    EXPECT_FALSE(hasPositiveCycle(graph, scc, 10));
}

TEST(RecMii, ZeroDistanceCycleIsFatal)
{
    Dfg graph = DfgBuilder("bad")
                    .op("a", Opcode::IntAlu)
                    .op("b", Opcode::IntAlu)
                    .flow("a", "b")
                    .flow("b", "a") // distance 0 both ways: impossible
                    .build();
    EXPECT_DEATH({ recMii(graph); }, "zero total distance");
}

TEST(RecMii, ReusesSccDecomposition)
{
    Dfg graph = paperExample();
    const SccInfo sccs = findSccs(graph);
    EXPECT_EQ(recMii(graph, sccs), 4);
}

} // namespace
} // namespace cams
