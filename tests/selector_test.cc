/**
 * @file
 * Unit tests for the Figure 9/10/11 selection cascades, especially
 * the soft-filter semantics: a criterion that matches nothing leaves
 * the candidate list untouched.
 */

#include <gtest/gtest.h>

#include "assign/selector.hh"

namespace cams
{
namespace
{

ClusterChoice
feasibleChoice(ClusterId cluster)
{
    ClusterChoice choice;
    choice.cluster = cluster;
    choice.feasible = true;
    choice.pcrOk = true;
    return choice;
}

TEST(Selector, NothingFeasibleReturnsInvalid)
{
    std::vector<ClusterChoice> choices(2);
    choices[0].cluster = 0;
    choices[1].cluster = 1;
    EXPECT_EQ(selectBestCluster(choices, true, true, false),
              invalidCluster);
}

TEST(Selector, SimpleSelectionTakesFirstFeasible)
{
    std::vector<ClusterChoice> choices;
    choices.push_back(ClusterChoice{}); // infeasible cluster 0
    choices.back().cluster = 0;
    choices.push_back(feasibleChoice(1));
    choices.back().requiredCopies = 99; // ignored by simple selection
    choices.push_back(feasibleChoice(2));
    EXPECT_EQ(selectBestCluster(choices, false, false, false), 1);
}

TEST(Selector, SccAffinityWins)
{
    std::vector<ClusterChoice> choices = {feasibleChoice(0),
                                          feasibleChoice(1)};
    choices[1].sccMate = true;
    EXPECT_EQ(selectBestCluster(choices, true, false, true), 1);
    // Without SCC membership the affinity flag is ignored.
    EXPECT_EQ(selectBestCluster(choices, true, false, false), 0);
}

TEST(Selector, SccAffinitySoftWhenNoMateAnywhere)
{
    std::vector<ClusterChoice> choices = {feasibleChoice(0),
                                          feasibleChoice(1)};
    // in_scc true but no cluster hosts a mate: list unchanged.
    EXPECT_EQ(selectBestCluster(choices, true, false, true), 0);
}

TEST(Selector, PcrFilterPrefersRoomForCopies)
{
    std::vector<ClusterChoice> choices = {feasibleChoice(0),
                                          feasibleChoice(1)};
    choices[0].pcrOk = false;
    EXPECT_EQ(selectBestCluster(choices, true, false, false), 1);
}

TEST(Selector, PcrFilterSoftWhenNowhereFits)
{
    std::vector<ClusterChoice> choices = {feasibleChoice(0),
                                          feasibleChoice(1)};
    choices[0].pcrOk = false;
    choices[1].pcrOk = false;
    choices[1].requiredCopies = 0;
    choices[0].requiredCopies = 1;
    EXPECT_EQ(selectBestCluster(choices, true, false, false), 1);
}

TEST(Selector, FewestRequiredCopies)
{
    std::vector<ClusterChoice> choices = {feasibleChoice(0),
                                          feasibleChoice(1),
                                          feasibleChoice(2)};
    choices[0].requiredCopies = 2;
    choices[1].requiredCopies = 1;
    choices[2].requiredCopies = 1;
    choices[2].freeResources = 10;
    choices[1].freeResources = 3;
    // Min copies keeps {1, 2}; max free resources picks 2.
    EXPECT_EQ(selectBestCluster(choices, true, false, false), 2);
}

TEST(Selector, PreviouslyTriedAvoided)
{
    std::vector<ClusterChoice> choices = {feasibleChoice(0),
                                          feasibleChoice(1)};
    choices[0].previouslyTried = true;
    EXPECT_EQ(selectBestCluster(choices, true, true, false), 1);
    // When everything was tried, the filter goes soft.
    choices[1].previouslyTried = true;
    EXPECT_EQ(selectBestCluster(choices, true, true, false), 0);
    // Non-iterative variants skip the filter entirely.
    choices[1].previouslyTried = false;
    EXPECT_EQ(selectBestCluster(choices, true, false, false), 0);
}

TEST(Selector, CascadePriorityOrder)
{
    // SCC affinity must outrank the copy count.
    std::vector<ClusterChoice> choices = {feasibleChoice(0),
                                          feasibleChoice(1)};
    choices[0].requiredCopies = 0;
    choices[1].requiredCopies = 5;
    choices[1].sccMate = true;
    EXPECT_EQ(selectBestCluster(choices, true, false, true), 1);
}

TEST(ForcedSelector, PrefersBareOpFit)
{
    std::vector<ClusterChoice> choices(3);
    for (int c = 0; c < 3; ++c)
        choices[c].cluster = c;
    choices[1].bareOpFits = true;
    choices[2].bareOpFits = true;
    choices[1].conflictingNeighbors = 4;
    choices[2].conflictingNeighbors = 1;
    EXPECT_EQ(selectForcedCluster(choices, true), 2);
}

TEST(ForcedSelector, FallsBackWhenNothingFits)
{
    std::vector<ClusterChoice> choices(2);
    choices[0].cluster = 0;
    choices[1].cluster = 1;
    choices[0].conflictingNeighbors = 3;
    choices[1].conflictingNeighbors = 1;
    EXPECT_EQ(selectForcedCluster(choices, true), 1);
}

TEST(ForcedSelector, AvoidsPreviouslyTried)
{
    std::vector<ClusterChoice> choices(2);
    choices[0].cluster = 0;
    choices[1].cluster = 1;
    choices[0].previouslyTried = true;
    choices[0].bareOpFits = true;
    // Repetition avoidance outranks the bare-op fit.
    EXPECT_EQ(selectForcedCluster(choices, true), 1);
}

} // namespace
} // namespace cams
