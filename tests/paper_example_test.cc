/**
 * @file
 * Integration test reproducing the paper's Section 3 walkthrough.
 *
 * The Figure 6 loop (6 unit-latency ops, C taking 2 cycles, with the
 * recurrence B->C->D -(d1)-> B) is assigned onto the hypothetical
 * machine of the example: two clusters of one GP unit each, two
 * buses, one read/write port per cluster. The paper shows that a
 * naive bottom-up first-fit assignment fails at II = MII = 4, while
 * the SCC-first + copy-prediction algorithm succeeds with II = 4.
 */

#include <gtest/gtest.h>

#include "assign/assigner.hh"
#include "graph/builder.hh"
#include "graph/recmii.hh"
#include "pipeline/driver.hh"
#include "sched/mii.hh"
#include "sched/verifier.hh"

namespace cams
{
namespace
{

Dfg
figure6()
{
    return DfgBuilder("fig6")
        .op("A", Opcode::IntAlu)
        .op("B", Opcode::IntAlu)
        .op("C", Opcode::IntAlu, 2)
        .op("D", Opcode::IntAlu)
        .op("E", Opcode::IntAlu)
        .op("F", Opcode::IntAlu)
        .chain({"A", "B", "C", "D", "E", "F"})
        .carried("D", "B", 1)
        .build();
}

MachineDesc
exampleMachine()
{
    MachineDesc machine;
    machine.name = "2c-1gp-2b-1p";
    machine.interconnect = InterconnectKind::Bus;
    machine.numBuses = 2;
    for (int c = 0; c < 2; ++c) {
        ClusterDesc cluster;
        cluster.gpUnits = 1;
        cluster.readPorts = 1;
        cluster.writePorts = 1;
        machine.clusters.push_back(cluster);
    }
    machine.validate();
    return machine;
}

TEST(PaperExample, MiiIsFour)
{
    const Dfg graph = figure6();
    const MachineDesc unified =
        exampleMachine().unifiedEquivalent();
    const MiiInfo mii = computeMii(graph, unified);
    EXPECT_EQ(mii.recMii, 4); // (1 + 2 + 1) / 1
    EXPECT_EQ(mii.resMii, 3); // 6 ops / width 2
    EXPECT_EQ(mii.mii, 4);
}

TEST(PaperExample, FullAlgorithmAssignsAtMii)
{
    const Dfg graph = figure6();
    const MachineDesc machine = exampleMachine();
    const ResourceModel model(machine);
    const auto result = ClusterAssigner(model).run(graph, 4);
    ASSERT_TRUE(result.success);

    // The SCC {B, C, D} stays on one cluster.
    EXPECT_EQ(result.clusterOf[1], result.clusterOf[2]);
    EXPECT_EQ(result.clusterOf[2], result.clusterOf[3]);

    // Exactly four ops fit on the SCC's cluster at II 4, so A, E and
    // F cannot all join it: copies exist but never inside the SCC.
    std::string why;
    EXPECT_TRUE(result.loop.validate(machine, &why)) << why;
    EXPECT_GE(result.copies, 1);

    // The recurrence cycle is still II-4 feasible after annotation.
    EXPECT_EQ(recMii(result.loop.graph), 4);
}

TEST(PaperExample, EndToEndMatchesUnifiedIi)
{
    const Dfg graph = figure6();
    const MachineDesc machine = exampleMachine();

    const CompileResult unified =
        compileUnified(graph, machine.unifiedEquivalent());
    ASSERT_TRUE(unified.success);
    EXPECT_EQ(unified.ii, 4);

    const CompileResult clustered = compileClustered(graph, machine);
    ASSERT_TRUE(clustered.success);
    EXPECT_EQ(clustered.ii, 4) << "communication was not hidden";

    std::string why;
    const ResourceModel model(machine);
    EXPECT_TRUE(verifySchedule(clustered.loop, model,
                               clustered.schedule, &why))
        << why;
}

TEST(PaperExample, WorksWithBothSchedulers)
{
    const Dfg graph = figure6();
    const MachineDesc machine = exampleMachine();
    for (SchedulerKind kind :
         {SchedulerKind::Swing, SchedulerKind::Iterative}) {
        CompileOptions options;
        options.scheduler = kind;
        const CompileResult result =
            compileClustered(graph, machine, options);
        ASSERT_TRUE(result.success);
        if (kind == SchedulerKind::Swing) {
            // The paper's scheduler reaches the MII.
            EXPECT_EQ(result.ii, 4);
        } else {
            // Rau's IMS reaches the optimal II for ~98% of loops; the
            // rigid one-free-row recurrence of this example on a
            // 1-wide cluster is in the unlucky tail, so allow one
            // extra cycle.
            EXPECT_LE(result.ii, 5);
        }
    }
}

TEST(PaperExample, SimpleNonIterativeDoesNotBeatFullAlgorithm)
{
    const Dfg graph = figure6();
    const MachineDesc machine = exampleMachine();

    CompileOptions full;
    const int full_ii = compileClustered(graph, machine, full).ii;

    CompileOptions simple;
    simple.assign.iterative = false;
    simple.assign.fullHeuristic = false;
    const CompileResult weak = compileClustered(graph, machine, simple);
    ASSERT_TRUE(weak.success);
    EXPECT_GE(weak.ii, full_ii);
}

} // namespace
} // namespace cams
