/**
 * @file
 * Tests for the execution simulators: functional semantics,
 * sequential reference, the cycle-accurate VLIW pipeline, and the
 * equivalence harness -- including negative tests proving the
 * simulator actually catches broken schedules and placements.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "sim/compare.hh"
#include "sim/reference.hh"
#include "sim/vliw.hh"
#include "workload/kernels.hh"
#include "workload/suite.hh"

namespace cams
{
namespace
{

TEST(Semantics, Deterministic)
{
    EXPECT_EQ(applyOp(Opcode::FpAdd, 3, {1, 2}),
              applyOp(Opcode::FpAdd, 3, {1, 2}));
    EXPECT_NE(applyOp(Opcode::FpAdd, 3, {1, 2}),
              applyOp(Opcode::FpAdd, 3, {2, 1})); // order sensitive
    EXPECT_NE(applyOp(Opcode::FpAdd, 3, {1, 2}),
              applyOp(Opcode::FpMult, 3, {1, 2}));
    EXPECT_NE(applyOp(Opcode::FpAdd, 3, {1, 2}),
              applyOp(Opcode::FpAdd, 4, {1, 2}));
}

TEST(Semantics, LiveInsDistinct)
{
    EXPECT_NE(liveInValue(0, -1), liveInValue(0, -2));
    EXPECT_NE(liveInValue(0, -1), liveInValue(1, -1));
    EXPECT_EQ(liveInValue(5, -3), liveInValue(5, -3));
}

TEST(Reference, ChainPropagatesValues)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::FpAdd)
                    .flow("a", "b")
                    .build();
    const ReferenceTrace trace(graph, 3);
    for (long iter = 0; iter < 3; ++iter) {
        const SimValue a = applyOp(Opcode::Load, 0, {});
        EXPECT_EQ(trace.value(0, iter), a);
        EXPECT_EQ(trace.value(1, iter),
                  applyOp(Opcode::FpAdd, 1, {a}));
    }
}

TEST(Reference, RecurrenceEvolves)
{
    Dfg graph = DfgBuilder("t")
                    .op("acc", Opcode::FpAdd)
                    .carried("acc", "acc", 1)
                    .build();
    const ReferenceTrace trace(graph, 4);
    // iteration 0 consumes the live-in; every later one consumes the
    // previous value, so all four values are distinct.
    EXPECT_EQ(trace.value(0, 0),
              applyOp(Opcode::FpAdd, 0, {liveInValue(0, -1)}));
    for (long iter = 1; iter < 4; ++iter) {
        EXPECT_EQ(trace.value(0, iter),
                  applyOp(Opcode::FpAdd, 0, {trace.value(0, iter - 1)}));
        EXPECT_NE(trace.value(0, iter), trace.value(0, iter - 1));
    }
}

TEST(Reference, RejectsAnnotatedGraphs)
{
    Dfg graph;
    graph.addNode(Opcode::Copy);
    EXPECT_DEATH({ ReferenceTrace trace(graph, 1); }, "annotated");
}

TEST(Vliw, UnifiedKernelMatchesReference)
{
    const MachineDesc machine = unifiedGpMachine(8);
    for (const Dfg &kernel : allKernels()) {
        const CompileResult result = compileUnified(kernel, machine);
        ASSERT_TRUE(result.success) << kernel.name();
        const auto report = checkEquivalence(kernel, result.loop,
                                             result.schedule, machine);
        EXPECT_TRUE(report.equivalent)
            << kernel.name() << ": "
            << (report.mismatches.empty() ? "" : report.mismatches[0]);
        EXPECT_EQ(report.transfers, 0);
    }
}

TEST(Vliw, ClusteredKernelsMatchReferenceEverywhere)
{
    const std::vector<MachineDesc> machines = {
        busedGpMachine(2, 2, 1), busedGpMachine(4, 4, 2),
        busedFsMachine(2, 2, 1), gridMachine()};
    for (const MachineDesc &machine : machines) {
        for (const Dfg &kernel : allKernels()) {
            const CompileResult result =
                compileClustered(kernel, machine);
            ASSERT_TRUE(result.success)
                << kernel.name() << " on " << machine.name;
            const auto report = checkEquivalence(
                kernel, result.loop, result.schedule, machine, 10);
            EXPECT_TRUE(report.equivalent)
                << kernel.name() << " on " << machine.name << ": "
                << (report.mismatches.empty() ? ""
                                              : report.mismatches[0]);
            if (result.copies > 0) {
                EXPECT_GT(report.transfers, 0);
            }
        }
    }
}

TEST(Vliw, CatchesTamperedSchedule)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    Dfg kernel = kernelHydro();
    CompileResult result = compileClustered(kernel, machine);
    ASSERT_TRUE(result.success);

    // Pull a dependent op one full stage earlier: the simulator must
    // flag a too-early read (values would be garbage in hardware).
    Schedule broken = result.schedule;
    NodeId victim = invalidNode;
    for (NodeId v = 0; v < result.loop.graph.numNodes(); ++v) {
        if (!result.loop.graph.inEdges(v).empty() &&
            broken.startCycle[v] >= broken.ii) {
            victim = v;
            break;
        }
    }
    ASSERT_NE(victim, invalidNode);
    broken.startCycle[victim] -= broken.ii;

    VliwSimulator sim(result.loop, broken, machine);
    const VliwRun run = sim.run(8);
    EXPECT_FALSE(run.ok());
}

TEST(Vliw, CatchesTamperedPlacement)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    Dfg kernel = kernelFir4();
    CompileResult result = compileClustered(kernel, machine);
    ASSERT_TRUE(result.success);

    // Move one op with local predecessors to the other cluster
    // without inserting copies: reads must fail to find the value.
    AnnotatedLoop broken = result.loop;
    NodeId victim = invalidNode;
    for (NodeId v = 0; v < broken.numOriginalNodes; ++v) {
        if (!broken.graph.inEdges(v).empty()) {
            victim = v;
            break;
        }
    }
    ASSERT_NE(victim, invalidNode);
    broken.placement[victim].cluster =
        1 - broken.placement[victim].cluster;

    VliwSimulator sim(broken, result.schedule, machine);
    const VliwRun run = sim.run(8);
    EXPECT_FALSE(run.ok());
}

TEST(Vliw, TransfersCountHops)
{
    // On the grid a diagonal value crosses two links: at least two
    // transfers for one logical communication.
    const MachineDesc grid = gridMachine();
    Dfg kernel = kernelStateEquation();
    const CompileResult result = compileClustered(kernel, grid);
    ASSERT_TRUE(result.success);
    const auto report = checkEquivalence(kernel, result.loop,
                                         result.schedule, grid, 6);
    EXPECT_TRUE(report.equivalent);
    EXPECT_EQ(report.transfers, 6L * result.copies);
}

TEST(Vliw, GeneratedLoopsEquivalentEndToEnd)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    for (uint64_t seed = 7000; seed < 7012; ++seed) {
        const Dfg loop = generateLoop(seed);
        const CompileResult result = compileClustered(loop, machine);
        ASSERT_TRUE(result.success) << "seed " << seed;
        const auto report = checkEquivalence(loop, result.loop,
                                             result.schedule, machine);
        EXPECT_TRUE(report.equivalent)
            << "seed " << seed << ": "
            << (report.mismatches.empty() ? "" : report.mismatches[0]);
    }
}

TEST(Vliw, ZeroIterationsIsClean)
{
    const MachineDesc machine = unifiedGpMachine(8);
    Dfg kernel = kernelFirstDiff();
    const CompileResult result = compileUnified(kernel, machine);
    ASSERT_TRUE(result.success);
    VliwSimulator sim(result.loop, result.schedule, machine);
    const VliwRun run = sim.run(0);
    EXPECT_TRUE(run.ok());
    EXPECT_EQ(run.cycles, 0);
}

} // namespace
} // namespace cams
