/**
 * @file
 * Unit tests for the graph substrate: opcodes (Table 2), the DFG
 * container, the builder, text round-tripping and DOT output.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "graph/dfg.hh"
#include "graph/dot.hh"
#include "graph/opcode.hh"
#include "graph/textio.hh"

namespace cams
{
namespace
{

TEST(Opcode, Table2Latencies)
{
    EXPECT_EQ(opcodeLatency(Opcode::IntAlu), 1);
    EXPECT_EQ(opcodeLatency(Opcode::IntShift), 1);
    EXPECT_EQ(opcodeLatency(Opcode::Branch), 1);
    EXPECT_EQ(opcodeLatency(Opcode::Store), 1);
    EXPECT_EQ(opcodeLatency(Opcode::FpAdd), 1);
    EXPECT_EQ(opcodeLatency(Opcode::Copy), 1);
    EXPECT_EQ(opcodeLatency(Opcode::Load), 2);
    EXPECT_EQ(opcodeLatency(Opcode::FpMult), 3);
    EXPECT_EQ(opcodeLatency(Opcode::FpDiv), 9);
    EXPECT_EQ(opcodeLatency(Opcode::FpSqrt), 9);
}

TEST(Opcode, FuClasses)
{
    EXPECT_EQ(opcodeFuClass(Opcode::Load), FuClass::Memory);
    EXPECT_EQ(opcodeFuClass(Opcode::Store), FuClass::Memory);
    EXPECT_EQ(opcodeFuClass(Opcode::IntAlu), FuClass::Integer);
    EXPECT_EQ(opcodeFuClass(Opcode::Branch), FuClass::Integer);
    EXPECT_EQ(opcodeFuClass(Opcode::FpSqrt), FuClass::Float);
    EXPECT_EQ(opcodeFuClass(Opcode::Copy), FuClass::None);
}

TEST(Opcode, NameRoundTrip)
{
    for (int i = 0; i < numOpcodes; ++i) {
        const Opcode op = static_cast<Opcode>(i);
        Opcode parsed;
        ASSERT_TRUE(opcodeFromName(opcodeName(op), parsed));
        EXPECT_EQ(parsed, op);
    }
    Opcode dummy;
    EXPECT_FALSE(opcodeFromName("nosuchop", dummy));
}

TEST(Dfg, AddNodesAndEdges)
{
    Dfg graph;
    const NodeId a = graph.addNode(Opcode::Load);
    const NodeId b = graph.addNode(Opcode::FpMult, 5, "custom");
    graph.addEdge(a, b);
    EXPECT_EQ(graph.numNodes(), 2);
    EXPECT_EQ(graph.numEdges(), 1);
    EXPECT_EQ(graph.node(a).latency, 2); // Load default
    EXPECT_EQ(graph.node(b).latency, 5);
    EXPECT_EQ(graph.node(b).name, "custom");
    EXPECT_EQ(graph.edge(0).latency, 2); // producer latency default
    EXPECT_EQ(graph.edge(0).distance, 0);
}

TEST(Dfg, AdjacencyAndDedup)
{
    Dfg graph;
    const NodeId a = graph.addNode(Opcode::IntAlu);
    const NodeId b = graph.addNode(Opcode::IntAlu);
    graph.addEdge(a, b);
    graph.addEdge(a, b, -1, 1); // parallel edge, different distance
    EXPECT_EQ(graph.outEdges(a).size(), 2u);
    EXPECT_EQ(graph.inEdges(b).size(), 2u);
    EXPECT_EQ(graph.successors(a), std::vector<NodeId>{b});
    EXPECT_EQ(graph.predecessors(b), std::vector<NodeId>{a});
}

TEST(Dfg, TotalLatency)
{
    Dfg graph;
    graph.addNode(Opcode::Load);   // 2
    graph.addNode(Opcode::FpMult); // 3
    EXPECT_EQ(graph.totalLatency(), 5);
}

TEST(Dfg, WellFormed)
{
    Dfg graph;
    const NodeId a = graph.addNode(Opcode::IntAlu);
    graph.addEdge(a, a, -1, 1);
    std::string why;
    EXPECT_TRUE(graph.wellFormed(&why)) << why;
}

TEST(Builder, NamedConstruction)
{
    Dfg graph = DfgBuilder("test")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::FpAdd)
                    .op("c", Opcode::Store)
                    .chain({"a", "b", "c"})
                    .carried("b", "b", 1)
                    .build();
    EXPECT_EQ(graph.name(), "test");
    EXPECT_EQ(graph.numNodes(), 3);
    EXPECT_EQ(graph.numEdges(), 3);
    EXPECT_EQ(graph.node(0).name, "a");
}

TEST(TextIo, RoundTrip)
{
    Dfg original = DfgBuilder("rt")
                       .op("x", Opcode::Load)
                       .op("y", Opcode::FpMult, 7)
                       .op("z", Opcode::Store)
                       .flow("x", "y")
                       .carried("y", "z", 2)
                       .build();
    const std::string text = serializeDfg(original);
    Dfg parsed;
    std::string error;
    ASSERT_TRUE(parseDfg(text, parsed, error)) << error;
    EXPECT_EQ(parsed.name(), "rt");
    ASSERT_EQ(parsed.numNodes(), 3);
    ASSERT_EQ(parsed.numEdges(), 2);
    EXPECT_EQ(parsed.node(1).latency, 7);
    EXPECT_EQ(parsed.edge(1).distance, 2);
    // Serializing again must be identical.
    EXPECT_EQ(serializeDfg(parsed), text);
}

TEST(TextIo, ParseWithCommentsAndBlanks)
{
    const std::string text = "# header\n"
                             "loop demo\n"
                             "\n"
                             "node a ld   # a load\n"
                             "node b st\n"
                             "edge a b lat=4 dist=1\n";
    Dfg graph;
    std::string error;
    ASSERT_TRUE(parseDfg(text, graph, error)) << error;
    EXPECT_EQ(graph.numNodes(), 2);
    EXPECT_EQ(graph.edge(0).latency, 4);
    EXPECT_EQ(graph.edge(0).distance, 1);
}

TEST(TextIo, RejectsBadInput)
{
    Dfg graph;
    std::string error;
    EXPECT_FALSE(parseDfg("node a nosuchop\n", graph, error));
    EXPECT_NE(error.find("line 1"), std::string::npos);
    EXPECT_FALSE(parseDfg("edge a b\n", graph, error));
    EXPECT_FALSE(parseDfg("node a ld\nnode a ld\n", graph, error));
    EXPECT_FALSE(parseDfg("bogus\n", graph, error));
    EXPECT_FALSE(parseDfg("node a ld lat=x\n", graph, error));
}

TEST(Dot, ContainsNodesAndClusterGroups)
{
    Dfg graph = DfgBuilder("d")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::Store)
                    .flow("a", "b")
                    .build();
    const std::string plain = toDot(graph);
    EXPECT_NE(plain.find("n0 -> n1"), std::string::npos);
    EXPECT_EQ(plain.find("subgraph"), std::string::npos);

    const std::vector<int> clusters = {0, 1};
    const std::string grouped = toDot(graph, &clusters);
    EXPECT_NE(grouped.find("subgraph cluster_0"), std::string::npos);
    EXPECT_NE(grouped.find("subgraph cluster_1"), std::string::npos);
}

TEST(Dot, CarriedEdgesDashed)
{
    Dfg graph = DfgBuilder("d2")
                    .op("a", Opcode::FpAdd)
                    .carried("a", "a", 3)
                    .build();
    const std::string dot = toDot(graph);
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);
    EXPECT_NE(dot.find("d3"), std::string::npos);
}

} // namespace
} // namespace cams
