/**
 * @file
 * Unit tests for the SCC decomposition (Tarjan).
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "graph/scc.hh"

namespace cams
{
namespace
{

std::vector<NodeId>
sortedComponentOf(const SccInfo &info, NodeId node)
{
    auto comp = info.components[info.componentOf[node]];
    std::sort(comp.begin(), comp.end());
    return comp;
}

TEST(Scc, AcyclicGraphAllTrivial)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::FpAdd)
                    .op("c", Opcode::Store)
                    .chain({"a", "b", "c"})
                    .build();
    const SccInfo info = findSccs(graph);
    EXPECT_EQ(info.numComponents(), 3);
    EXPECT_EQ(info.numNonTrivial(), 0);
    for (NodeId v = 0; v < 3; ++v)
        EXPECT_FALSE(info.inRecurrence(v));
}

TEST(Scc, SelfLoopIsNonTrivial)
{
    Dfg graph = DfgBuilder("t")
                    .op("acc", Opcode::FpAdd)
                    .carried("acc", "acc", 1)
                    .build();
    const SccInfo info = findSccs(graph);
    EXPECT_EQ(info.numComponents(), 1);
    EXPECT_EQ(info.numNonTrivial(), 1);
    EXPECT_TRUE(info.inRecurrence(0));
}

TEST(Scc, CycleDetected)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::IntAlu)
                    .op("b", Opcode::IntAlu)
                    .op("c", Opcode::IntAlu)
                    .op("d", Opcode::IntAlu)
                    .chain({"a", "b", "c"})
                    .carried("c", "b", 1)
                    .flow("c", "d")
                    .build();
    const SccInfo info = findSccs(graph);
    EXPECT_EQ(info.numNonTrivial(), 1);
    EXPECT_FALSE(info.inRecurrence(graph.numNodes() - 4)); // a
    EXPECT_TRUE(info.inRecurrence(1));                     // b
    EXPECT_TRUE(info.inRecurrence(2));                     // c
    EXPECT_FALSE(info.inRecurrence(3));                    // d
    const auto comp = sortedComponentOf(info, 1);
    EXPECT_EQ(comp, (std::vector<NodeId>{1, 2}));
}

TEST(Scc, MultipleComponents)
{
    // Two separate 2-cycles plus an isolated chain.
    Dfg graph = DfgBuilder("t")
                    .op("a1", Opcode::FpAdd)
                    .op("a2", Opcode::FpMult)
                    .op("b1", Opcode::IntAlu)
                    .op("b2", Opcode::IntAlu)
                    .op("c", Opcode::Store)
                    .flow("a1", "a2")
                    .carried("a2", "a1", 1)
                    .flow("b1", "b2")
                    .carried("b2", "b1", 2)
                    .flow("a2", "c")
                    .build();
    const SccInfo info = findSccs(graph);
    EXPECT_EQ(info.numNonTrivial(), 2);
    EXPECT_NE(info.componentOf[0], info.componentOf[2]);
    EXPECT_EQ(info.componentOf[0], info.componentOf[1]);
    EXPECT_EQ(info.componentOf[2], info.componentOf[3]);
    EXPECT_FALSE(info.inRecurrence(4));
}

TEST(Scc, ReverseTopologicalComponentOrder)
{
    // a -> b means component(b) is emitted before component(a) by
    // Tarjan.
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::IntAlu)
                    .op("b", Opcode::IntAlu)
                    .flow("a", "b")
                    .build();
    const SccInfo info = findSccs(graph);
    EXPECT_LT(info.componentOf[1], info.componentOf[0]);
}

TEST(Scc, LargeCycleSingleComponent)
{
    DfgBuilder b("ring");
    const int n = 50;
    for (int i = 0; i < n; ++i)
        b.op("n" + std::to_string(i), Opcode::IntAlu);
    for (int i = 0; i + 1 < n; ++i)
        b.flow("n" + std::to_string(i), "n" + std::to_string(i + 1));
    b.carried("n" + std::to_string(n - 1), "n0", 1);
    Dfg graph = b.build();
    const SccInfo info = findSccs(graph);
    EXPECT_EQ(info.numComponents(), 1);
    EXPECT_EQ(info.components[0].size(), static_cast<size_t>(n));
    EXPECT_TRUE(info.nonTrivial[0]);
}

TEST(Scc, DisconnectedNodes)
{
    Dfg graph;
    graph.addNode(Opcode::Load);
    graph.addNode(Opcode::Load);
    const SccInfo info = findSccs(graph);
    EXPECT_EQ(info.numComponents(), 2);
    EXPECT_EQ(info.numNonTrivial(), 0);
}

TEST(Scc, EmptyGraph)
{
    Dfg graph;
    const SccInfo info = findSccs(graph);
    EXPECT_EQ(info.numComponents(), 0);
    EXPECT_EQ(info.numNonTrivial(), 0);
}

} // namespace
} // namespace cams
