/**
 * @file
 * Unit tests for priority-set grouping and the swing node order.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "order/scc_sets.hh"
#include "order/swing_order.hh"

namespace cams
{
namespace
{

Dfg
twoRecurrences()
{
    // Critical SCC {c1, c2} with RecMII 4 (fmul in the cycle); mild
    // SCC {m1, m2} with RecMII 2; plus free nodes.
    return DfgBuilder("t")
        .op("pre", Opcode::Load)
        .op("c1", Opcode::FpAdd)
        .op("c2", Opcode::FpMult)
        .op("m1", Opcode::IntAlu)
        .op("m2", Opcode::IntAlu)
        .op("post", Opcode::Store)
        .flow("pre", "c1")
        .flow("c1", "c2")
        .carried("c2", "c1", 1)
        .flow("m1", "m2")
        .carried("m2", "m1", 1)
        .flow("c2", "post")
        .build();
}

TEST(SccSets, MostCriticalFirst)
{
    Dfg graph = twoRecurrences();
    const NodeSets sets = buildPrioritySets(graph, findSccs(graph));
    ASSERT_EQ(sets.numSets(), 3);
    EXPECT_EQ(sets.recMii[0], 4);
    EXPECT_EQ(sets.recMii[1], 2);
    EXPECT_EQ(sets.recMii[2], 1);
    // First set holds c1 (id 1) and c2 (id 2).
    EXPECT_EQ(sets.sets[0], (std::vector<NodeId>{1, 2}));
    EXPECT_EQ(sets.sets[1], (std::vector<NodeId>{3, 4}));
    EXPECT_EQ(sets.sets[2], (std::vector<NodeId>{0, 5}));
}

TEST(SccSets, SetOfIsConsistent)
{
    Dfg graph = twoRecurrences();
    const NodeSets sets = buildPrioritySets(graph, findSccs(graph));
    for (int s = 0; s < sets.numSets(); ++s) {
        for (NodeId v : sets.sets[s])
            EXPECT_EQ(sets.setOf[v], s);
    }
}

TEST(SccSets, AcyclicGraphOneSet)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::Store)
                    .flow("a", "b")
                    .build();
    const NodeSets sets = buildPrioritySets(graph, findSccs(graph));
    ASSERT_EQ(sets.numSets(), 1);
    EXPECT_EQ(sets.sets[0].size(), 2u);
    EXPECT_EQ(sets.recMii[0], 1);
}

TEST(SccSets, TieBreakBySize)
{
    // Two SCCs with the same RecMII (2): sizes 3 and 2.
    Dfg graph = DfgBuilder("t")
                    .op("a1", Opcode::IntAlu)
                    .op("a2", Opcode::IntAlu)
                    .op("b1", Opcode::IntAlu)
                    .op("b2", Opcode::IntAlu)
                    .op("b3", Opcode::IntAlu)
                    .flow("a1", "a2")
                    .carried("a2", "a1", 1)
                    .chain({"b1", "b2", "b3"})
                    .carried("b3", "b1", 2) // 3/2 -> 2
                    .build();
    const NodeSets sets = buildPrioritySets(graph, findSccs(graph));
    ASSERT_EQ(sets.numSets(), 2);
    EXPECT_EQ(sets.sets[0].size(), 3u);
    EXPECT_EQ(sets.sets[1].size(), 2u);
}

TEST(SwingOrder, EveryNodeExactlyOnce)
{
    Dfg graph = twoRecurrences();
    const auto order = swingOrder(graph, 4);
    ASSERT_EQ(order.size(), static_cast<size_t>(graph.numNodes()));
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (NodeId v = 0; v < graph.numNodes(); ++v)
        EXPECT_EQ(sorted[v], v);
}

TEST(SwingOrder, CriticalSccLeads)
{
    Dfg graph = twoRecurrences();
    const auto order = swingOrder(graph, 4);
    // The two members of the critical SCC come first (in some order).
    std::vector<NodeId> head = {order[0], order[1]};
    std::sort(head.begin(), head.end());
    EXPECT_EQ(head, (std::vector<NodeId>{1, 2}));
}

TEST(SwingOrder, NeighborAdjacency)
{
    // On a chain, the swing order should emit each node adjacent to an
    // already ordered neighbor (no jumps that strand a node between
    // two ordered neighbors).
    Dfg graph = DfgBuilder("chain")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::IntAlu)
                    .op("c", Opcode::IntAlu)
                    .op("d", Opcode::Store)
                    .chain({"a", "b", "c", "d"})
                    .build();
    const auto order = swingOrder(graph, 1);
    std::vector<int> position(graph.numNodes());
    for (size_t i = 0; i < order.size(); ++i)
        position[order[i]] = static_cast<int>(i);
    // Each node (after the first) has an adjacent-in-graph node
    // earlier in the order.
    for (size_t i = 1; i < order.size(); ++i) {
        const NodeId v = order[i];
        bool adjacent = false;
        for (NodeId p : graph.predecessors(v)) {
            if (position[p] < position[v])
                adjacent = true;
        }
        for (NodeId s : graph.successors(v)) {
            if (position[s] < position[v])
                adjacent = true;
        }
        EXPECT_TRUE(adjacent) << "node " << v << " stranded";
    }
}

TEST(SwingOrder, PaperExampleOrdering)
{
    // Figure 6 graph: the SCC {B, C, D} must precede A, E, F.
    Dfg graph = DfgBuilder("fig6")
                    .op("A", Opcode::IntAlu)
                    .op("B", Opcode::IntAlu)
                    .op("C", Opcode::IntAlu, 2)
                    .op("D", Opcode::IntAlu)
                    .op("E", Opcode::IntAlu)
                    .op("F", Opcode::IntAlu)
                    .chain({"A", "B", "C", "D", "E", "F"})
                    .carried("D", "B", 1)
                    .build();
    const auto order = swingOrder(graph, 4);
    std::vector<int> position(graph.numNodes());
    for (size_t i = 0; i < order.size(); ++i)
        position[order[i]] = static_cast<int>(i);
    // B=1, C=2, D=3 are the SCC; A=0, E=4, F=5 follow.
    EXPECT_LT(position[1], 3);
    EXPECT_LT(position[2], 3);
    EXPECT_LT(position[3], 3);
    EXPECT_GE(position[0], 3);
    EXPECT_GE(position[4], 3);
    EXPECT_GE(position[5], 3);
}

TEST(SwingOrder, DisconnectedComponents)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::Load)
                    .op("c", Opcode::Load)
                    .build();
    const auto order = swingOrder(graph, 1);
    EXPECT_EQ(order.size(), 3u);
}

} // namespace
} // namespace cams
