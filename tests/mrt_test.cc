/**
 * @file
 * Unit tests for the resource model and the modulo reservation table.
 */

#include <gtest/gtest.h>

#include "machine/configs.hh"
#include "mrt/mrt.hh"

namespace cams
{
namespace
{

TEST(ResourceModel, GpPoolsAlias)
{
    const ResourceModel model(busedGpMachine(2, 2, 1));
    EXPECT_EQ(model.fuPool(0, FuClass::Memory),
              model.fuPool(0, FuClass::Float));
    EXPECT_NE(model.fuPool(0, FuClass::Memory),
              model.fuPool(1, FuClass::Memory));
    EXPECT_EQ(model.capacity(model.fuPool(0, FuClass::Integer)), 4);
    EXPECT_EQ(model.fuPool(0, FuClass::None), invalidPool);
}

TEST(ResourceModel, FsPoolsSeparate)
{
    const ResourceModel model(busedFsMachine(2, 2, 1));
    const PoolId mem = model.fuPool(0, FuClass::Memory);
    const PoolId intp = model.fuPool(0, FuClass::Integer);
    const PoolId fp = model.fuPool(0, FuClass::Float);
    EXPECT_NE(mem, intp);
    EXPECT_NE(intp, fp);
    EXPECT_EQ(model.capacity(mem), 1);
    EXPECT_EQ(model.capacity(intp), 2);
    EXPECT_EQ(model.capacity(fp), 1);
}

TEST(ResourceModel, PortsAndBus)
{
    const ResourceModel model(busedGpMachine(2, 2, 1));
    EXPECT_NE(model.readPool(0), invalidPool);
    EXPECT_NE(model.writePool(1), invalidPool);
    EXPECT_NE(model.busPool(), invalidPool);
    EXPECT_EQ(model.capacity(model.busPool()), 2);
    EXPECT_EQ(model.capacity(model.readPool(0)), 1);
}

TEST(ResourceModel, UnifiedHasNoPorts)
{
    const ResourceModel model(unifiedGpMachine(8));
    EXPECT_EQ(model.readPool(0), invalidPool);
    EXPECT_EQ(model.busPool(), invalidPool);
}

TEST(ResourceModel, OpRequestUsesFuPool)
{
    const ResourceModel model(busedFsMachine(2, 2, 1));
    const auto request = model.opRequest(1, Opcode::Load);
    ASSERT_EQ(request.size(), 1u);
    EXPECT_EQ(request[0], model.fuPool(1, FuClass::Memory));
}

TEST(ResourceModel, BroadcastCopyRequest)
{
    const ResourceModel model(busedGpMachine(4, 4, 2));
    const auto request = model.copyRequest(0, {1, 3});
    // read@0, bus, write@1, write@3.
    ASSERT_EQ(request.size(), 4u);
    EXPECT_EQ(request[0], model.readPool(0));
    EXPECT_EQ(request[1], model.busPool());
    EXPECT_EQ(request[2], model.writePool(1));
    EXPECT_EQ(request[3], model.writePool(3));
}

TEST(ResourceModel, PointToPointCopyRequest)
{
    const MachineDesc grid = gridMachine();
    const ResourceModel model(grid);
    const auto request = model.copyRequest(0, {1});
    ASSERT_EQ(request.size(), 3u);
    EXPECT_EQ(request[0], model.readPool(0));
    EXPECT_EQ(request[1], model.linkPool(grid.linkBetween(0, 1)));
    EXPECT_EQ(request[2], model.writePool(1));
}

TEST(ResourceModel, PointToPointCopyNeedsLink)
{
    const ResourceModel model(gridMachine());
    EXPECT_DEATH({ model.copyRequest(0, {3}); }, "no link");
}

TEST(Mrt, ReserveAndRelease)
{
    const ResourceModel model(busedGpMachine(2, 2, 1));
    Mrt mrt(model, 2);
    const PoolId gp = model.fuPool(0, FuClass::Integer);
    EXPECT_EQ(mrt.freeTotal(gp), 8); // 4 units x II 2

    const auto res = mrt.reserve({gp});
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->row, 0);
    EXPECT_EQ(mrt.freeTotal(gp), 7);
    EXPECT_EQ(mrt.usedTotal(gp), 1);

    mrt.release(*res);
    EXPECT_EQ(mrt.freeTotal(gp), 8);
}

TEST(Mrt, RowFillsThenOverflows)
{
    const ResourceModel model(busedGpMachine(2, 2, 1));
    Mrt mrt(model, 1);
    const PoolId gp = model.fuPool(0, FuClass::Integer);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(mrt.reserve({gp}).has_value());
    EXPECT_FALSE(mrt.reserve({gp}).has_value());
    EXPECT_EQ(mrt.findRow({gp}), -1);
}

TEST(Mrt, FirstFitSkipsFullRows)
{
    const ResourceModel model(busedGpMachine(2, 2, 1));
    Mrt mrt(model, 3);
    const PoolId read = model.readPool(0);
    // One read port per row; fill row 0 and 1.
    mrt.reserveAt({read}, 0);
    mrt.reserveAt({read}, 1);
    const auto res = mrt.reserve({read});
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->row, 2);
}

TEST(Mrt, JointRequestNeedsAllPoolsInOneRow)
{
    const ResourceModel model(busedGpMachine(2, 2, 1));
    Mrt mrt(model, 2);
    const PoolId read = model.readPool(0);
    const PoolId bus = model.busPool();
    // Fill the read port in row 0 and the bus in row 1: a joint
    // (read, bus) request no longer fits anywhere.
    mrt.reserveAt({read}, 0);
    mrt.reserveAt({bus}, 1);
    mrt.reserveAt({bus}, 1);
    EXPECT_TRUE(mrt.canReserveAt({read, bus}, 1) == false);
    EXPECT_EQ(mrt.findRow({read, bus}), -1);
}

TEST(Mrt, DuplicatePoolsInOneRequest)
{
    const ResourceModel model(busedGpMachine(2, 2, 1));
    Mrt mrt(model, 1);
    const PoolId bus = model.busPool(); // capacity 2
    EXPECT_TRUE(mrt.canReserveAt({bus, bus}, 0));
    mrt.reserveAt({bus, bus}, 0);
    EXPECT_FALSE(mrt.canReserveAt({bus}, 0));
}

TEST(Mrt, ReserveAtWrapsRows)
{
    const ResourceModel model(busedGpMachine(2, 2, 1));
    Mrt mrt(model, 3);
    const PoolId gp = model.fuPool(0, FuClass::Integer);
    const auto res = mrt.reserveAt({gp}, 7); // 7 mod 3 = 1
    EXPECT_EQ(res.row, 1);
    EXPECT_EQ(mrt.freeInRow(gp, 1), 3);
}

TEST(Mrt, DoubleReleaseDies)
{
    const ResourceModel model(busedGpMachine(2, 2, 1));
    Mrt mrt(model, 1);
    const PoolId gp = model.fuPool(0, FuClass::Integer);
    const auto res = mrt.reserveAt({gp}, 0);
    mrt.release(res);
    EXPECT_DEATH({ mrt.release(res); }, "double release");
}

} // namespace
} // namespace cams
