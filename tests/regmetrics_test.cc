/**
 * @file
 * Unit tests for the register-pressure metrics.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "sched/regmetrics.hh"
#include "workload/kernels.hh"

namespace cams
{
namespace
{

TEST(RegMetrics, SimpleChainLifetime)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::Store)
                    .flow("a", "b")
                    .build();
    const AnnotatedLoop loop = unifiedLoop(graph);
    Schedule schedule;
    schedule.ii = 4;
    schedule.startCycle = {0, 2};
    const RegMetrics metrics = computeRegMetrics(loop, schedule);
    // a live cycles [0, 2): 2 cycles; b produces nothing.
    EXPECT_EQ(metrics.totalLifetime, 2);
    EXPECT_EQ(metrics.maxLive, 1);
    EXPECT_EQ(metrics.mveFactor, 1);
}

TEST(RegMetrics, LongLifetimeNeedsExpansion)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::Store)
                    .flow("a", "b")
                    .build();
    const AnnotatedLoop loop = unifiedLoop(graph);
    Schedule schedule;
    schedule.ii = 2;
    schedule.startCycle = {0, 5}; // lifetime 5 > 2 * II
    const RegMetrics metrics = computeRegMetrics(loop, schedule);
    EXPECT_EQ(metrics.mveFactor, 3); // ceil(5/2)
    // Rows: full wraps = 2 on both rows; remainder covers row 0.
    EXPECT_EQ(metrics.maxLive, 3);
}

TEST(RegMetrics, CarriedUseExtendsLifetime)
{
    Dfg graph = DfgBuilder("t")
                    .op("acc", Opcode::FpAdd)
                    .carried("acc", "acc", 1)
                    .build();
    const AnnotatedLoop loop = unifiedLoop(graph);
    Schedule schedule;
    schedule.ii = 3;
    schedule.startCycle = {0};
    const RegMetrics metrics = computeRegMetrics(loop, schedule);
    // acc's value is read by itself one iteration later: lifetime II.
    EXPECT_EQ(metrics.totalLifetime, 3);
    EXPECT_EQ(metrics.maxLive, 1);
}

TEST(RegMetrics, EndToEndSchedulesHaveBoundedPressure)
{
    const MachineDesc machine = unifiedGpMachine(8);
    for (const Dfg &kernel : allKernels()) {
        const CompileResult result = compileUnified(kernel, machine);
        ASSERT_TRUE(result.success) << kernel.name();
        const RegMetrics metrics =
            computeRegMetrics(result.loop, result.schedule);
        EXPECT_GT(metrics.maxLive, 0) << kernel.name();
        EXPECT_LE(metrics.maxLive, 64) << kernel.name();
        EXPECT_GE(metrics.mveFactor, 1);
    }
}

} // namespace
} // namespace cams
