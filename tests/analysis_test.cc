/**
 * @file
 * Unit tests for the timing analyses (ASAP/ALAP/height/mobility at a
 * candidate II).
 */

#include <gtest/gtest.h>

#include "graph/analysis.hh"
#include "graph/builder.hh"

namespace cams
{
namespace
{

TEST(Analysis, ChainAsap)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load)   // lat 2
                    .op("b", Opcode::FpMult) // lat 3
                    .op("c", Opcode::Store)
                    .chain({"a", "b", "c"})
                    .build();
    const TimeAnalysis timing = analyzeTiming(graph, 1);
    EXPECT_EQ(timing.asap[0], 0);
    EXPECT_EQ(timing.asap[1], 2);
    EXPECT_EQ(timing.asap[2], 5);
    EXPECT_EQ(timing.criticalPath, 6);
}

TEST(Analysis, ChainHeight)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::FpMult)
                    .op("c", Opcode::Store)
                    .chain({"a", "b", "c"})
                    .build();
    const TimeAnalysis timing = analyzeTiming(graph, 1);
    // height includes the node's own trailing latency.
    EXPECT_EQ(timing.height[2], 1);
    EXPECT_EQ(timing.height[1], 4); // 3 + 1
    EXPECT_EQ(timing.height[0], 6); // 2 + 3 + 1
}

TEST(Analysis, MobilityOnDiamond)
{
    // a -> {fast, slow} -> d; the fast arm has slack.
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::IntAlu)
                    .op("fast", Opcode::IntAlu)   // lat 1
                    .op("slow", Opcode::FpMult)   // lat 3
                    .op("d", Opcode::IntAlu)
                    .flow("a", "fast")
                    .flow("a", "slow")
                    .flow("fast", "d")
                    .flow("slow", "d")
                    .build();
    const TimeAnalysis timing = analyzeTiming(graph, 1);
    EXPECT_EQ(timing.mobility[0], 0);
    EXPECT_EQ(timing.mobility[2], 0); // slow arm is critical
    EXPECT_EQ(timing.mobility[1], 2); // fast can slide by 2
    EXPECT_EQ(timing.mobility[3], 0);
    EXPECT_GE(timing.alap[1], timing.asap[1]);
}

TEST(Analysis, CarriedEdgeRelaxesWithIi)
{
    // acc -(d1)-> acc with lat 1: at any II >= 1 asap stays 0, but the
    // cycle b->c->b (lat 4, dist 1) forces later starts at small II.
    Dfg graph = DfgBuilder("t")
                    .op("b", Opcode::FpAdd)
                    .op("c", Opcode::FpMult)
                    .flow("b", "c")
                    .carried("c", "b", 1)
                    .build();
    // RecMII = 4; analyze at 4 and at 6.
    const TimeAnalysis at4 = analyzeTiming(graph, 4);
    EXPECT_EQ(at4.asap[0], 0);
    EXPECT_EQ(at4.asap[1], 1);
    const TimeAnalysis at6 = analyzeTiming(graph, 6);
    EXPECT_EQ(at6.asap[1], 1);
}

TEST(Analysis, BelowRecMiiDies)
{
    Dfg graph = DfgBuilder("t")
                    .op("b", Opcode::FpAdd)
                    .op("c", Opcode::FpMult)
                    .flow("b", "c")
                    .carried("c", "b", 1)
                    .build();
    EXPECT_DEATH({ analyzeTiming(graph, 3); }, "positive cycle");
}

TEST(Analysis, AlapRespectsCriticalPath)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::Load)
                    .op("b", Opcode::Store)
                    .op("free", Opcode::IntAlu)
                    .flow("a", "b")
                    .build();
    const TimeAnalysis timing = analyzeTiming(graph, 1);
    EXPECT_EQ(timing.criticalPath, 3);
    // The disconnected node can sit anywhere up to the end.
    EXPECT_EQ(timing.alap[2], 2);
    EXPECT_EQ(timing.mobility[2], 2);
}

TEST(Analysis, EmptyGraph)
{
    Dfg graph;
    const TimeAnalysis timing = analyzeTiming(graph, 2);
    EXPECT_EQ(timing.criticalPath, 0);
    EXPECT_TRUE(timing.asap.empty());
}

} // namespace
} // namespace cams
