/**
 * @file
 * Tests for the compile server (pipeline/serve): protocol round
 * trips against direct compiles, deadline expiry in the queue,
 * cancellation of queued and running requests, graceful drain,
 * overload shedding, tenant cache namespacing, and two servers
 * sharing one persistent cache directory.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include <unistd.h>

#include <cstring>

#include "machine/configs.hh"
#include "pipeline/cache/hash.hh"
#include "pipeline/cache/serialize.hh"
#include "pipeline/serve/client.hh"
#include "pipeline/serve/retry_client.hh"
#include "pipeline/serve/server.hh"
#include "workload/suite.hh"

namespace cams
{
namespace
{

namespace fs = std::filesystem;

/** Unique socket path per test (sun_path is only ~100 bytes). */
std::string
testSocket(const std::string &name)
{
    return "/tmp/cams_serve_" + std::to_string(::getpid()) + "_" +
           name + ".sock";
}

/** Fresh scratch directory under the system tmp dir. */
std::string
testDir(const std::string &name)
{
    fs::path dir = fs::temp_directory_path() /
                   ("cams_serve_" + std::to_string(::getpid()) +
                    "_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** Zeroes the one wall-clock field of the result image. */
std::string
canonicalBytes(const CompileResult &result)
{
    CompileResult copy = result;
    copy.phaseMs = PhaseTimes{};
    ByteWriter writer;
    writeCompileResult(writer, copy);
    return writer.data();
}

/** A terminal server response (Result/Shed/Cancelled/Error). */
struct Outcome
{
    ServeMsgType type = ServeMsgType::Error;
    bool accepted = false;
    ServerMsg msg;
};

/**
 * Reads until every id in @p ids reached a terminal message.
 * Accepted messages mark the outcome but do not terminate it.
 */
std::map<uint64_t, Outcome>
collect(ServeClient &client, const std::vector<uint64_t> &ids)
{
    std::map<uint64_t, Outcome> outcomes;
    for (const uint64_t id : ids)
        outcomes[id] = Outcome{};
    size_t terminal = 0;
    while (terminal < outcomes.size()) {
        ServerMsg msg;
        std::string error;
        if (!client.readMsg(msg, error)) {
            ADD_FAILURE() << "connection lost waiting for responses: "
                          << error;
            break;
        }
        auto it = outcomes.find(msg.id);
        if (it == outcomes.end())
            continue; // Pong or unrelated
        if (msg.type == ServeMsgType::Accepted) {
            it->second.accepted = true;
            continue;
        }
        it->second.type = msg.type;
        it->second.msg = msg;
        ++terminal;
    }
    return outcomes;
}

/** One server + the loop/machine corpus every test compiles. */
class ServeTest : public ::testing::Test
{
  protected:
    void
    startServer(ServeConfig config)
    {
        server = std::make_unique<CamsServer>(std::move(config));
        std::string error;
        ASSERT_TRUE(server->start(error)) << error;
    }

    SubmitMsg
    makeSubmit(uint64_t id, int loopIndex)
    {
        SubmitMsg msg;
        msg.id = id;
        msg.dfgBytes = packDfg(suite[loopIndex % suite.size()]);
        msg.machineBytes = machineBytes;
        return msg;
    }

    MachineDesc machine = busedGpMachine(2, 2, 1);
    std::string machineBytes = packMachine(machine);
    std::vector<Dfg> suite = buildSuite(8, defaultSuiteSeed);
    std::unique_ptr<CamsServer> server;
};

TEST_F(ServeTest, RoundTripMatchesDirectCompile)
{
    ServeConfig config;
    config.socketPath = testSocket("roundtrip");
    startServer(config);

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, "t", error))
        << error;
    EXPECT_EQ(client.serverQueueCapacity(),
              static_cast<uint32_t>(config.queueCapacity));

    std::vector<uint64_t> ids;
    for (uint64_t id = 1; id <= suite.size(); ++id) {
        ASSERT_TRUE(client.submit(makeSubmit(id, int(id - 1)),
                                  error))
            << error;
        ids.push_back(id);
    }
    auto outcomes = collect(client, ids);

    CompileOptions options;
    options.timeBudgetMs = config.compileBudgetMs;
    for (const uint64_t id : ids) {
        const Outcome &outcome = outcomes[id];
        ASSERT_EQ(outcome.type, ServeMsgType::Result);
        EXPECT_TRUE(outcome.accepted);
        CompileResult served;
        ByteReader reader(outcome.msg.resultBytes);
        ASSERT_TRUE(readCompileResult(reader, served));
        const CompileResult local = compileClustered(
            suite[id - 1], machine, options);
        EXPECT_EQ(canonicalBytes(served), canonicalBytes(local))
            << "loop " << id - 1;
    }
    server->stop();
}

TEST_F(ServeTest, UnifiedPathRoundTrips)
{
    ServeConfig config;
    config.socketPath = testSocket("unified");
    startServer(config);

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, "t", error))
        << error;
    const MachineDesc unified = machine.unifiedEquivalent();
    SubmitMsg msg = makeSubmit(1, 0);
    msg.clustered = false;
    msg.machineBytes = packMachine(unified);
    ASSERT_TRUE(client.submit(msg, error)) << error;

    // A unified request against a clustered machine is refused with
    // an Error -- the driver's single-cluster precondition panics,
    // so the server must never let such a request reach it.
    SubmitMsg bad = makeSubmit(2, 0);
    bad.clustered = false;
    ASSERT_TRUE(client.submit(bad, error)) << error;

    auto outcomes = collect(client, {1, 2});
    ASSERT_EQ(outcomes[1].type, ServeMsgType::Result);
    EXPECT_EQ(outcomes[2].type, ServeMsgType::Error);

    CompileResult served;
    ByteReader reader(outcomes[1].msg.resultBytes);
    ASSERT_TRUE(readCompileResult(reader, served));
    CompileOptions options;
    options.timeBudgetMs = config.compileBudgetMs;
    const CompileResult local =
        compileUnified(suite[0], unified, options);
    EXPECT_EQ(canonicalBytes(served), canonicalBytes(local));
    server->stop();
}

TEST_F(ServeTest, DeadlineExpiredInQueueReturnsTimeoutResult)
{
    ServeConfig config;
    config.socketPath = testSocket("deadline");
    config.workers = 1;
    config.allowDebugSleep = true;
    startServer(config);

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, "t", error))
        << error;

    // Request 1 holds the only worker long past request 2's
    // deadline; 2 must come back as a classified Timeout result,
    // not a hang and not a protocol error.
    SubmitMsg blocker = makeSubmit(1, 0);
    blocker.debugSleepMs = 400.0;
    ASSERT_TRUE(client.submit(blocker, error)) << error;
    SubmitMsg doomed = makeSubmit(2, 1);
    doomed.deadlineMs = 50.0;
    ASSERT_TRUE(client.submit(doomed, error)) << error;

    auto outcomes = collect(client, {1, 2});
    ASSERT_EQ(outcomes[1].type, ServeMsgType::Result);
    ASSERT_EQ(outcomes[2].type, ServeMsgType::Result);

    CompileResult result;
    ByteReader reader(outcomes[2].msg.resultBytes);
    ASSERT_TRUE(readCompileResult(reader, result));
    EXPECT_FALSE(result.success);
    EXPECT_EQ(result.failure, FailureKind::Timeout);
    EXPECT_NE(result.failureDetail.find("admission queue"),
              std::string::npos)
        << result.failureDetail;

    const ServeStats stats = server->stats();
    EXPECT_EQ(stats.deadlineExpired, 1);
    EXPECT_EQ(stats.completed, 2);
    server->stop();
}

TEST_F(ServeTest, CancelMidQueueRemovesRequest)
{
    ServeConfig config;
    config.socketPath = testSocket("cancelq");
    config.workers = 1;
    config.allowDebugSleep = true;
    startServer(config);

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, "t", error))
        << error;

    SubmitMsg blocker = makeSubmit(1, 0);
    blocker.debugSleepMs = 300.0;
    ASSERT_TRUE(client.submit(blocker, error)) << error;
    ASSERT_TRUE(client.submit(makeSubmit(2, 1), error)) << error;
    ASSERT_TRUE(client.cancel(2, error)) << error;

    auto outcomes = collect(client, {1, 2});
    EXPECT_EQ(outcomes[1].type, ServeMsgType::Result);
    ASSERT_EQ(outcomes[2].type, ServeMsgType::Cancelled);
    EXPECT_TRUE(outcomes[2].msg.wasQueued);
    EXPECT_EQ(server->stats().cancelledQueued, 1);
    server->stop();
}

TEST_F(ServeTest, CancelInFlightSkipsResult)
{
    ServeConfig config;
    config.socketPath = testSocket("cancelrun");
    config.workers = 1;
    config.allowDebugSleep = true;
    startServer(config);

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, "t", error))
        << error;

    SubmitMsg msg = makeSubmit(1, 0);
    msg.debugSleepMs = 500.0;
    ASSERT_TRUE(client.submit(msg, error)) << error;
    // Let the worker pick it up, then cancel the running request.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_TRUE(client.cancel(1, error)) << error;

    auto outcomes = collect(client, {1});
    ASSERT_EQ(outcomes[1].type, ServeMsgType::Cancelled);
    EXPECT_FALSE(outcomes[1].msg.wasQueued);
    EXPECT_EQ(server->stats().cancelledInFlight, 1);
    server->stop();
}

TEST_F(ServeTest, DrainCompletesInFlightAndShedsNewWork)
{
    ServeConfig config;
    config.socketPath = testSocket("drain");
    config.workers = 1;
    config.allowDebugSleep = true;
    startServer(config);

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, "t", error))
        << error;

    SubmitMsg inflight = makeSubmit(1, 0);
    inflight.debugSleepMs = 300.0;
    ASSERT_TRUE(client.submit(inflight, error)) << error;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    server->requestDrain();

    // A submit after drain began is shed, not queued.
    ASSERT_TRUE(client.submit(makeSubmit(2, 1), error)) << error;
    auto outcomes = collect(client, {1, 2});
    EXPECT_EQ(outcomes[1].type, ServeMsgType::Result)
        << "in-flight work must complete across drain";
    ASSERT_EQ(outcomes[2].type, ServeMsgType::Shed);
    EXPECT_EQ(outcomes[2].msg.reason, "draining");

    server->waitDrained();

    // The listener is gone: new connections are refused.
    ServeClient late;
    EXPECT_FALSE(late.connect(config.socketPath, "t", error));

    EXPECT_EQ(server->stats().shedDraining, 1);
    server->stop();
}

TEST_F(ServeTest, OverloadShedsWithExplicitReason)
{
    ServeConfig config;
    config.socketPath = testSocket("overload");
    config.workers = 1;
    config.queueCapacity = 2;
    config.allowDebugSleep = true;
    startServer(config);

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, "t", error))
        << error;

    SubmitMsg blocker = makeSubmit(1, 0);
    blocker.debugSleepMs = 300.0;
    ASSERT_TRUE(client.submit(blocker, error)) << error;
    // Let the worker take the blocker so the queue starts empty.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::vector<uint64_t> ids = {1};
    for (uint64_t id = 2; id <= 6; ++id) {
        ASSERT_TRUE(client.submit(makeSubmit(id, int(id)), error))
            << error;
        ids.push_back(id);
    }
    auto outcomes = collect(client, ids);

    int results = 0, shed = 0;
    for (const uint64_t id : ids) {
        if (outcomes[id].type == ServeMsgType::Result) {
            ++results;
        } else {
            ASSERT_EQ(outcomes[id].type, ServeMsgType::Shed);
            EXPECT_EQ(outcomes[id].msg.reason, "queue_full");
            ++shed;
        }
    }
    // Two fit in the queue behind the blocker; the rest must shed.
    EXPECT_GE(shed, 3);
    EXPECT_EQ(results + shed, 6);
    EXPECT_EQ(server->stats().shedFull, shed);
    EXPECT_EQ(server->stats().completed, results);
    server->stop();
}

TEST_F(ServeTest, TenantCachesAreDisjoint)
{
    ServeConfig config;
    config.socketPath = testSocket("tenants");
    config.cacheRoot = testDir("tenants_cache");
    startServer(config);

    const auto serveOnce = [&](const std::string &tenant) {
        ServeClient client;
        std::string error;
        EXPECT_TRUE(client.connect(config.socketPath, tenant, error))
            << error;
        EXPECT_TRUE(client.submit(makeSubmit(1, 0), error)) << error;
        auto outcomes = collect(client, {1});
        EXPECT_EQ(outcomes[1].type, ServeMsgType::Result);
        return outcomes[1].msg.fromCache;
    };

    // Each tenant's first compile is cold even though the other
    // tenant already compiled the identical loop; each tenant's
    // second is a hit. Cross-tenant hits would be an isolation leak.
    EXPECT_FALSE(serveOnce("alpha"));
    EXPECT_TRUE(serveOnce("alpha"));
    EXPECT_FALSE(serveOnce("beta"));
    EXPECT_TRUE(serveOnce("beta"));

    EXPECT_TRUE(fs::is_directory(
        fs::path(config.cacheRoot) / "alpha"));
    EXPECT_TRUE(fs::is_directory(
        fs::path(config.cacheRoot) / "beta"));
    EXPECT_EQ(server->stats().cacheHits, 2);
    server->stop();
}

TEST_F(ServeTest, TwoServersShareOneCacheDirectory)
{
    // The N-server safety claim: two independent camsd processes
    // pointed at one cache directory must coexist (the entry store
    // publishes via atomic rename) and serve each other's entries.
    const std::string cacheRoot = testDir("shared_cache");
    ServeConfig configA;
    configA.socketPath = testSocket("shared_a");
    configA.cacheRoot = cacheRoot;
    ServeConfig configB;
    configB.socketPath = testSocket("shared_b");
    configB.cacheRoot = cacheRoot;

    CamsServer serverA(configA), serverB(configB);
    std::string error;
    ASSERT_TRUE(serverA.start(error)) << error;
    ASSERT_TRUE(serverB.start(error)) << error;

    // Phase 1: both servers compile the same corpus concurrently.
    const auto driveAll = [&](const std::string &socket) {
        ServeClient client;
        std::string connectError;
        ASSERT_TRUE(client.connect(socket, "t", connectError))
            << connectError;
        std::vector<uint64_t> ids;
        for (uint64_t id = 1; id <= suite.size(); ++id) {
            std::string submitError;
            ASSERT_TRUE(client.submit(makeSubmit(id, int(id - 1)),
                                      submitError))
                << submitError;
            ids.push_back(id);
        }
        auto outcomes = collect(client, ids);
        for (const uint64_t id : ids)
            EXPECT_EQ(outcomes[id].type, ServeMsgType::Result);
    };
    std::thread threadA([&] { driveAll(configA.socketPath); });
    std::thread threadB([&] { driveAll(configB.socketPath); });
    threadA.join();
    threadB.join();

    // Phase 2: a rerun against server B hits on every loop -- the
    // store survived two concurrent writers with no torn entries.
    ServeClient client;
    ASSERT_TRUE(client.connect(configB.socketPath, "t", error))
        << error;
    std::vector<uint64_t> ids;
    for (uint64_t id = 1; id <= suite.size(); ++id) {
        ASSERT_TRUE(client.submit(makeSubmit(id, int(id - 1)),
                                  error))
            << error;
        ids.push_back(id);
    }
    auto outcomes = collect(client, ids);
    for (const uint64_t id : ids) {
        ASSERT_EQ(outcomes[id].type, ServeMsgType::Result);
        EXPECT_TRUE(outcomes[id].msg.fromCache)
            << "loop " << id - 1 << " missed after both servers "
            << "populated the shared store";
    }
    EXPECT_EQ(serverA.stats().protocolErrors, 0);
    EXPECT_EQ(serverB.stats().protocolErrors, 0);
    serverA.stop();
    serverB.stop();
}

TEST_F(ServeTest, MalformedFrameGetsErrorAndClose)
{
    ServeConfig config;
    config.socketPath = testSocket("proto");
    startServer(config);

    std::string error;
    SocketFd fd = connectUnix(config.socketPath, error);
    ASSERT_TRUE(fd.valid()) << error;
    ServeStream stream;
    ASSERT_TRUE(stream.writeFrame(fd.fd(),
                                  "garbage that is no message",
                                  error))
        << error;

    std::string payload;
    ASSERT_TRUE(stream.readFrame(fd.fd(), payload, serveMaxFrameBytes,
                                 0.0, error))
        << error;
    ServerMsg msg;
    ASSERT_TRUE(decodeServerMsg(payload, msg));
    EXPECT_EQ(msg.type, ServeMsgType::Error);

    // The server closes after a protocol error.
    EXPECT_FALSE(stream.readFrame(fd.fd(), payload,
                                  serveMaxFrameBytes, 0.0, error));
    // Stats are eventually consistent with connection teardown.
    for (int i = 0; i < 50 && server->stats().protocolErrors == 0;
         ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(server->stats().protocolErrors, 1);
    server->stop();
}

TEST_F(ServeTest, VersionMismatchIsRefused)
{
    ServeConfig config;
    config.socketPath = testSocket("version");
    startServer(config);

    std::string error;
    SocketFd fd = connectUnix(config.socketPath, error);
    ASSERT_TRUE(fd.valid()) << error;
    HelloMsg hello;
    hello.version = serveProtoVersion + 7;
    hello.tenant = "t";
    ServeStream stream;
    ASSERT_TRUE(stream.writeFrame(fd.fd(), encodeHello(hello), error))
        << error;

    std::string payload;
    ASSERT_TRUE(stream.readFrame(fd.fd(), payload, serveMaxFrameBytes,
                                 0.0, error))
        << error;
    ServerMsg msg;
    ASSERT_TRUE(decodeServerMsg(payload, msg));
    EXPECT_EQ(msg.type, ServeMsgType::Error);
    EXPECT_NE(msg.message.find("version"), std::string::npos)
        << msg.message;
    server->stop();
}

TEST_F(ServeTest, PingPongRoundTrips)
{
    ServeConfig config;
    config.socketPath = testSocket("ping");
    startServer(config);

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, "t", error))
        << error;
    ASSERT_TRUE(client.ping(0xC0FFEE, error)) << error;
    ServerMsg msg;
    ASSERT_TRUE(client.readMsg(msg, error)) << error;
    EXPECT_EQ(msg.type, ServeMsgType::Pong);
    EXPECT_EQ(msg.token, 0xC0FFEEu);
    server->stop();
}

TEST(ServeProto, SanitizeTenantMapsHostileNames)
{
    EXPECT_EQ(sanitizeTenant(""), "default");
    EXPECT_EQ(sanitizeTenant("alpha-1_B"), "alpha-1_B");
    EXPECT_EQ(sanitizeTenant("../../etc"), "______etc");
    EXPECT_EQ(sanitizeTenant("a/b c"), "a_b_c");
}

TEST(ServeProto, SubmitRoundTripsThroughEncoder)
{
    SubmitMsg msg;
    msg.id = 42;
    msg.clustered = false;
    msg.scheduler = 1;
    msg.deadlineMs = 12.5;
    msg.dfgBytes = "dfg-bytes";
    msg.machineBytes = "machine-bytes";
    ClientMsg decoded;
    ASSERT_TRUE(decodeClientMsg(encodeSubmit(msg), decoded));
    EXPECT_EQ(decoded.type, ServeMsgType::Submit);
    EXPECT_EQ(decoded.submit.id, 42u);
    EXPECT_FALSE(decoded.submit.clustered);
    EXPECT_EQ(decoded.submit.scheduler, 1u);
    EXPECT_EQ(decoded.submit.deadlineMs, 12.5);
    EXPECT_EQ(decoded.submit.dfgBytes, "dfg-bytes");
    EXPECT_EQ(decoded.submit.machineBytes, "machine-bytes");
}

TEST(ServeProto, TrailingBytesAreRejected)
{
    const std::string payload = encodeCancel(7) + "x";
    ClientMsg decoded;
    EXPECT_FALSE(decodeClientMsg(payload, decoded));
}

/** Raw handshake over an explicit stream (for wire-level tests). */
bool
rawHandshake(int fd, ServeStream &stream, std::string &error)
{
    HelloMsg hello;
    hello.tenant = "t";
    if (!stream.writeFrame(fd, encodeHello(hello), error))
        return false;
    std::string payload;
    if (!stream.readFrame(fd, payload, serveMaxFrameBytes, 0.0,
                          error))
        return false;
    ServerMsg msg;
    return decodeServerMsg(payload, msg) &&
           msg.type == ServeMsgType::HelloAck;
}

TEST_F(ServeTest, CorruptedFrameIsDetectedAndRefused)
{
    ServeConfig config;
    config.socketPath = testSocket("bitflip");
    startServer(config);

    std::string error;
    SocketFd fd = connectUnix(config.socketPath, error);
    ASSERT_TRUE(fd.valid()) << error;
    ServeStream stream;
    ASSERT_TRUE(rawHandshake(fd.fd(), stream, error)) << error;

    // A frame whose checksum does not match its payload -- one
    // flipped bit on the wire -- must be refused, never decoded.
    const std::string payload = encodePing(1);
    const uint32_t length = static_cast<uint32_t>(payload.size());
    const uint64_t badSum = hashBytes(payload) ^ 1;
    std::string wire(serveFrameOverhead, '\0');
    std::memcpy(&wire[0], &length, sizeof(length));
    std::memcpy(&wire[4], &badSum, sizeof(badSum));
    wire += payload;
    ASSERT_TRUE(sendAll(fd.fd(), wire.data(), wire.size(), error))
        << error;

    std::string response;
    ASSERT_TRUE(stream.readFrame(fd.fd(), response,
                                 serveMaxFrameBytes, 0.0, error))
        << error;
    ServerMsg msg;
    ASSERT_TRUE(decodeServerMsg(response, msg));
    EXPECT_EQ(msg.type, ServeMsgType::Error);
    EXPECT_NE(msg.message.find("checksum"), std::string::npos)
        << msg.message;

    // The connection is closed: framing may be desynchronized.
    EXPECT_FALSE(stream.readFrame(fd.fd(), response,
                                  serveMaxFrameBytes, 0.0, error));
    server->stop();
}

TEST_F(ServeTest, SlowLorisPeerIsCutByReadTimeout)
{
    ServeConfig config;
    config.socketPath = testSocket("loris");
    config.readTimeoutMs = 100.0;
    startServer(config);

    std::string error;
    SocketFd fd = connectUnix(config.socketPath, error);
    ASSERT_TRUE(fd.valid()) << error;
    ServeStream stream;
    ASSERT_TRUE(rawHandshake(fd.fd(), stream, error)) << error;

    // Start a frame and stall: the mid-frame deadline must cut the
    // connection instead of wedging the reader thread forever.
    const char dribble[3] = {0x10, 0x00, 0x00};
    ASSERT_TRUE(sendAll(fd.fd(), dribble, sizeof(dribble), error))
        << error;

    std::string response;
    ASSERT_TRUE(stream.readFrame(fd.fd(), response,
                                 serveMaxFrameBytes, 0.0, error))
        << error;
    ServerMsg msg;
    ASSERT_TRUE(decodeServerMsg(response, msg));
    EXPECT_EQ(msg.type, ServeMsgType::Error);
    EXPECT_NE(msg.message.find("timed out"), std::string::npos)
        << msg.message;
    EXPECT_FALSE(stream.readFrame(fd.fd(), response,
                                  serveMaxFrameBytes, 0.0, error));
    for (int i = 0; i < 50 && server->stats().readTimeouts == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(server->stats().readTimeouts, 1);
    server->stop();
}

TEST_F(ServeTest, RetriedSubmitReplaysIdenticalBytes)
{
    ServeConfig config;
    config.socketPath = testSocket("dedup");
    startServer(config);

    SubmitMsg msg = makeSubmit(1, 0);
    msg.retryKey = 0xFEEDFACE;

    std::string error;
    std::string firstBytes;
    {
        ServeClient client;
        ASSERT_TRUE(client.connect(config.socketPath, "t", error))
            << error;
        ASSERT_TRUE(client.submit(msg, error)) << error;
        auto outcomes = collect(client, {1});
        ASSERT_EQ(outcomes[1].type, ServeMsgType::Result);
        firstBytes = outcomes[1].msg.resultBytes;
    }

    // The "crashed" client reconnects and resubmits the same key:
    // the stored bytes come back verbatim, with no second compile.
    ServeClient retry;
    ASSERT_TRUE(retry.connect(config.socketPath, "t", error))
        << error;
    msg.id = 9; // a fresh connection may renumber requests
    ASSERT_TRUE(retry.submit(msg, error)) << error;
    auto outcomes = collect(retry, {9});
    ASSERT_EQ(outcomes[9].type, ServeMsgType::Result);
    EXPECT_EQ(outcomes[9].msg.resultBytes, firstBytes);

    const ServeStats stats = server->stats();
    EXPECT_EQ(stats.compiled, 1);
    EXPECT_EQ(stats.dedupReplayed, 1);
    server->stop();
}

TEST_F(ServeTest, RetryJoinsInFlightCompile)
{
    ServeConfig config;
    config.socketPath = testSocket("dedupjoin");
    config.allowDebugSleep = true;
    startServer(config);

    SubmitMsg msg = makeSubmit(1, 0);
    msg.retryKey = 0xBEEF;
    msg.debugSleepMs = 300.0;

    std::string error;
    ServeClient first;
    ASSERT_TRUE(first.connect(config.socketPath, "t", error))
        << error;
    ASSERT_TRUE(first.submit(msg, error)) << error;

    // Wait until the request is actually running, then "retry" it
    // from a second connection while the first is still waiting.
    for (int i = 0; i < 100 && server->stats().accepted == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    ServeClient second;
    ASSERT_TRUE(second.connect(config.socketPath, "t", error))
        << error;
    SubmitMsg retry = msg;
    retry.id = 2;
    ASSERT_TRUE(second.submit(retry, error)) << error;

    auto firstOutcome = collect(first, {1});
    auto secondOutcome = collect(second, {2});
    ASSERT_EQ(firstOutcome[1].type, ServeMsgType::Result);
    ASSERT_EQ(secondOutcome[2].type, ServeMsgType::Result);
    EXPECT_EQ(firstOutcome[1].msg.resultBytes,
              secondOutcome[2].msg.resultBytes);

    const ServeStats stats = server->stats();
    EXPECT_EQ(stats.compiled, 1);
    EXPECT_EQ(stats.dedupJoined, 1);
    server->stop();
}

TEST_F(ServeTest, KeyedWorkSurvivesClientDisconnect)
{
    ServeConfig config;
    config.socketPath = testSocket("orphan");
    config.allowDebugSleep = true;
    startServer(config);

    SubmitMsg msg = makeSubmit(1, 0);
    msg.retryKey = 0xD15C;
    msg.debugSleepMs = 200.0;

    std::string error;
    {
        ServeClient doomed;
        ASSERT_TRUE(doomed.connect(config.socketPath, "t", error))
            << error;
        ASSERT_TRUE(doomed.submit(msg, error)) << error;
        for (int i = 0; i < 100 && server->stats().accepted == 0;
             ++i)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        // The client dies mid-compile. Keyed work must finish into
        // the dedup table instead of being cancelled.
    }

    ServeClient back;
    ASSERT_TRUE(back.connect(config.socketPath, "t", error))
        << error;
    SubmitMsg retry = msg;
    retry.id = 5;
    ASSERT_TRUE(back.submit(retry, error)) << error;
    auto outcomes = collect(back, {5});
    ASSERT_EQ(outcomes[5].type, ServeMsgType::Result);

    const ServeStats stats = server->stats();
    EXPECT_EQ(stats.compiled, 1);
    EXPECT_EQ(stats.dedupReplayed + stats.dedupJoined, 1);
    server->stop();
}

TEST_F(ServeTest, WatchdogAnswersHungCompile)
{
    ServeConfig config;
    config.socketPath = testSocket("watchdog");
    config.allowDebugSleep = true;
    config.watchdogMs = 100.0;
    startServer(config);

    SubmitMsg msg = makeSubmit(1, 0);
    msg.debugSleepMs = 10000.0; // "hung" far beyond the watchdog

    std::string error;
    ServeClient client;
    ASSERT_TRUE(client.connect(config.socketPath, "t", error))
        << error;
    ASSERT_TRUE(client.submit(msg, error)) << error;
    auto outcomes = collect(client, {1});
    ASSERT_EQ(outcomes[1].type, ServeMsgType::Result);

    CompileResult served;
    ByteReader reader(outcomes[1].msg.resultBytes);
    ASSERT_TRUE(readCompileResult(reader, served));
    EXPECT_EQ(served.failure, FailureKind::Timeout);
    EXPECT_NE(served.failureDetail.find("watchdog"),
              std::string::npos)
        << served.failureDetail;
    EXPECT_EQ(server->stats().watchdogFired, 1);
    server->stop();
}

TEST_F(ServeTest, CamsClientReconnectsAcrossServerRestart)
{
    ServeConfig config;
    config.socketPath = testSocket("restart");

    auto serverA = std::make_unique<CamsServer>(config);
    std::string error;
    ASSERT_TRUE(serverA->start(error)) << error;

    CamsClient client;
    CamsClientConfig clientConfig;
    clientConfig.socketPath = config.socketPath;
    clientConfig.tenant = "t";
    clientConfig.retry.initialBackoffMs = 5.0;
    ASSERT_TRUE(client.start(clientConfig, error)) << error;

    ServerMsg out;
    SubmitMsg first = makeSubmit(1, 0);
    ASSERT_TRUE(client.compile(first, out, error)) << error;
    ASSERT_EQ(out.type, ServeMsgType::Result);
    const std::string bytesA = out.resultBytes;

    // Take the server down and bring a fresh one up on the same
    // socket; the client must ride the outage transparently.
    serverA->stop();
    serverA.reset();
    std::thread restarter([&] {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(200));
        server = std::make_unique<CamsServer>(config);
        std::string startError;
        ASSERT_TRUE(server->start(startError)) << startError;
    });

    SubmitMsg second = makeSubmit(2, 0);
    ASSERT_TRUE(client.compile(second, out, error)) << error;
    restarter.join();
    ASSERT_EQ(out.type, ServeMsgType::Result);
    EXPECT_EQ(out.resultBytes.size(), bytesA.size());
    EXPECT_GE(client.stats().reconnects, 1);
    client.close();
    server->stop();
}

TEST_F(ServeTest, ChaosCompilesStayByteIdentical)
{
    ServeConfig config;
    config.socketPath = testSocket("chaos");
    config.readTimeoutMs = 300.0;
    config.chaos = ChaosConfig::uniform(0.05, 7);
    config.chaos.stallMs = 20.0;
    startServer(config);

    CamsClient client;
    CamsClientConfig clientConfig;
    clientConfig.socketPath = config.socketPath;
    clientConfig.tenant = "t";
    clientConfig.retry.initialBackoffMs = 2.0;
    clientConfig.retry.readTimeoutMs = 500.0;
    clientConfig.retry.retryOnShed = true;
    clientConfig.chaos = ChaosConfig::uniform(0.05, 9);
    clientConfig.chaos.stallMs = 20.0;
    std::string error;
    ASSERT_TRUE(client.start(clientConfig, error)) << error;

    CompileOptions options;
    options.timeBudgetMs = config.compileBudgetMs;
    for (uint64_t id = 1; id <= 24; ++id) {
        SubmitMsg msg = makeSubmit(id, int(id % suite.size()));
        ServerMsg out;
        ASSERT_TRUE(client.compile(msg, out, error))
            << "id " << id << ": " << error;
        ASSERT_EQ(out.type, ServeMsgType::Result) << "id " << id;
        CompileResult served;
        ByteReader reader(out.resultBytes);
        ASSERT_TRUE(readCompileResult(reader, served));
        const CompileResult local = compileClustered(
            suite[id % suite.size()], machine, options);
        EXPECT_EQ(canonicalBytes(served), canonicalBytes(local))
            << "id " << id;
    }
    client.close();
    server->stop();
}

TEST_F(ServeTest, StatsEndpointReportsWindowedLatency)
{
    ServeConfig config;
    config.socketPath = testSocket("stats");
    startServer(config);

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, "t", error))
        << error;
    std::vector<uint64_t> ids;
    for (uint64_t id = 1; id <= suite.size(); ++id) {
        ASSERT_TRUE(client.submit(makeSubmit(id, int(id - 1)),
                                  error))
            << error;
        ids.push_back(id);
    }
    auto outcomes = collect(client, ids);
    for (const uint64_t id : ids)
        ASSERT_EQ(outcomes[id].type, ServeMsgType::Result);

    // Poll on a dedicated monitoring connection, like cams_top does.
    ServeClient monitor;
    ASSERT_TRUE(monitor.connect(config.socketPath, "mon", error))
        << error;
    StatsReplyMsg stats;
    ASSERT_TRUE(monitor.stats(stats, error)) << error;

    EXPECT_GT(stats.uptimeSeconds, 0.0);
    EXPECT_EQ(stats.workers,
              static_cast<uint32_t>(config.workers));
    EXPECT_EQ(stats.queueCapacity,
              static_cast<uint32_t>(config.queueCapacity));
    EXPECT_FALSE(stats.draining);
    EXPECT_EQ(stats.inFlight, 0u);

    const auto counter = [&](const std::string &name)
        -> const StatsCounter * {
        for (const StatsCounter &c : stats.counters)
            if (c.name == name)
                return &c;
        return nullptr;
    };
    const StatsCounter *completed = counter("serve.completed");
    ASSERT_NE(completed, nullptr);
    EXPECT_EQ(completed->total,
              static_cast<int64_t>(suite.size()));
    // The compiles just happened, so the whole story is inside the
    // 1-minute window.
    EXPECT_EQ(completed->last1m, completed->total);

    const auto histogram = [&](const std::string &name)
        -> const StatsHistogram * {
        for (const StatsHistogram &h : stats.histograms)
            if (h.name == name)
                return &h;
        return nullptr;
    };
    const StatsHistogram *compileMs =
        histogram("serve.compile_ms");
    ASSERT_NE(compileMs, nullptr);
    EXPECT_EQ(compileMs->total.count, suite.size());
    EXPECT_EQ(compileMs->last1m.count, suite.size());
    EXPECT_LE(compileMs->last1m.p50, compileMs->last1m.p99);
    const StatsHistogram *queueDepth =
        histogram("serve.queue_depth");
    ASSERT_NE(queueDepth, nullptr);
    EXPECT_EQ(queueDepth->total.count, suite.size());

    bool sawTenant = false;
    for (const TenantStats &tenant : stats.tenants) {
        if (tenant.tenant != "t")
            continue;
        sawTenant = true;
        EXPECT_EQ(tenant.submitted,
                  static_cast<int64_t>(suite.size()));
        EXPECT_EQ(tenant.completed,
                  static_cast<int64_t>(suite.size()));
        EXPECT_EQ(tenant.shed, 0);
    }
    EXPECT_TRUE(sawTenant);
    server->stop();
}

TEST_F(ServeTest, HealthReplyTracksDrainState)
{
    ServeConfig config;
    config.socketPath = testSocket("health");
    startServer(config);

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, "t", error))
        << error;
    HealthReplyMsg health;
    ASSERT_TRUE(client.health(health, error)) << error;
    EXPECT_EQ(health.status, "ok");
    EXPECT_EQ(health.version, serveProtoVersion);
    EXPECT_EQ(health.queueDepth, 0u);
    EXPECT_EQ(health.queueCapacity,
              static_cast<uint32_t>(config.queueCapacity));

    server->requestDrain();
    ASSERT_TRUE(client.health(health, error)) << error;
    EXPECT_EQ(health.status, "draining");
    server->waitDrained();
    server->stop();
}

TEST_F(ServeTest, SampledTraceCorrelatesAcrossProcessBoundary)
{
    TraceSink sink(TraceLevel::Phase, 1024);
    ServeConfig config;
    config.socketPath = testSocket("reqtrace");
    config.traceSink = &sink;
    startServer(config);

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(config.socketPath, "t", error))
        << error;
    SubmitMsg sampled = makeSubmit(1, 0);
    sampled.traceId = 424243;
    sampled.traceSampled = true;
    SubmitMsg unsampled = makeSubmit(2, 1);
    unsampled.traceId = 777777;
    unsampled.traceSampled = false;
    ASSERT_TRUE(client.submit(sampled, error)) << error;
    ASSERT_TRUE(client.submit(unsampled, error)) << error;
    auto outcomes = collect(client, {1, 2});
    ASSERT_EQ(outcomes[1].type, ServeMsgType::Result);
    ASSERT_EQ(outcomes[2].type, ServeMsgType::Result);
    server->stop();

    // The sampled request reads as one correlated story under its
    // client-chosen id: admission instant, back-dated queue wait,
    // and the compile scope (which prefixes the driver's own phase
    // scopes). The unsampled request left no events at all.
    bool sawAdmitted = false;
    bool sawQueueWait = false;
    bool sawCompile = false;
    for (const TraceEvent &event : sink.snapshot()) {
        EXPECT_EQ(event.name.find("req-777777"), std::string::npos)
            << event.name;
        if (event.name.rfind("req-424243/", 0) != 0)
            continue;
        const std::string step = event.name.substr(
            std::string("req-424243/").size());
        if (step == "admitted") {
            sawAdmitted = true;
            EXPECT_EQ(event.phase, 'i');
        } else if (step == "queue_wait") {
            sawQueueWait = true;
            EXPECT_EQ(event.phase, 'X');
        } else if (step == "serve_compile") {
            sawCompile = true;
            EXPECT_EQ(event.phase, 'X');
        }
    }
    EXPECT_TRUE(sawAdmitted);
    EXPECT_TRUE(sawQueueWait);
    EXPECT_TRUE(sawCompile);
}

} // namespace
} // namespace cams
