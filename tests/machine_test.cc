/**
 * @file
 * Unit tests for machine descriptions and the paper's configurations.
 */

#include <gtest/gtest.h>

#include "machine/configs.hh"
#include "machine/machine.hh"

namespace cams
{
namespace
{

TEST(Machine, GpClusterExecutesEverything)
{
    const MachineDesc machine = busedGpMachine(2, 2, 1);
    EXPECT_EQ(machine.numClusters(), 2);
    EXPECT_EQ(machine.totalWidth(), 8);
    for (int cls = 0; cls < numFuClasses; ++cls) {
        EXPECT_EQ(machine.fuCount(0, static_cast<FuClass>(cls)), 4);
    }
    EXPECT_TRUE(machine.broadcast());
    EXPECT_TRUE(machine.canExecute(Opcode::FpSqrt));
    EXPECT_TRUE(machine.canExecute(Opcode::Copy));
}

TEST(Machine, FsClusterHasDedicatedPools)
{
    const MachineDesc machine = busedFsMachine(4, 4, 2);
    EXPECT_EQ(machine.totalWidth(), 16);
    EXPECT_EQ(machine.fuCount(1, FuClass::Memory), 1);
    EXPECT_EQ(machine.fuCount(1, FuClass::Integer), 2);
    EXPECT_EQ(machine.fuCount(1, FuClass::Float), 1);
}

TEST(Machine, SingleClusterCannotCopy)
{
    const MachineDesc unified = unifiedGpMachine(8);
    EXPECT_FALSE(unified.canExecute(Opcode::Copy));
}

TEST(Machine, UnifiedEquivalentOfGp)
{
    const MachineDesc machine = busedGpMachine(4, 4, 2);
    const MachineDesc unified = machine.unifiedEquivalent();
    EXPECT_EQ(unified.numClusters(), 1);
    EXPECT_EQ(unified.totalWidth(), 16);
    EXPECT_TRUE(unified.cluster(0).usesGpPool());
}

TEST(Machine, UnifiedEquivalentOfFs)
{
    const MachineDesc machine = busedFsMachine(2, 2, 1);
    const MachineDesc unified = machine.unifiedEquivalent();
    EXPECT_EQ(unified.numClusters(), 1);
    EXPECT_EQ(unified.fuCount(0, FuClass::Memory), 2);
    EXPECT_EQ(unified.fuCount(0, FuClass::Integer), 4);
    EXPECT_EQ(unified.fuCount(0, FuClass::Float), 2);
}

TEST(Machine, UnifiedEquivalentOfGrid)
{
    const MachineDesc unified = gridMachine().unifiedEquivalent();
    EXPECT_EQ(unified.fuCount(0, FuClass::Memory), 4);
    EXPECT_EQ(unified.fuCount(0, FuClass::Integer), 4);
    EXPECT_EQ(unified.fuCount(0, FuClass::Float), 4);
}

TEST(Machine, BusNeighborsAreAllOthers)
{
    const MachineDesc machine = busedGpMachine(4, 4, 2);
    const auto neighbors = machine.neighbors(2);
    EXPECT_EQ(neighbors, (std::vector<ClusterId>{0, 1, 3}));
}

TEST(Machine, GridTopology)
{
    const MachineDesc grid = gridMachine();
    EXPECT_EQ(grid.numClusters(), 4);
    EXPECT_EQ(grid.interconnect, InterconnectKind::PointToPoint);
    EXPECT_EQ(grid.links.size(), 4u);
    // Each corner has exactly two neighbors; diagonals are not linked.
    EXPECT_EQ(grid.neighbors(0), (std::vector<ClusterId>{1, 2}));
    EXPECT_EQ(grid.neighbors(3), (std::vector<ClusterId>{1, 2}));
    EXPECT_EQ(grid.linkBetween(0, 3), -1);
    EXPECT_GE(grid.linkBetween(0, 1), 0);
    EXPECT_EQ(grid.linkBetween(1, 0), grid.linkBetween(0, 1));
}

TEST(Machine, GridRoutes)
{
    const MachineDesc grid = gridMachine();
    const auto direct = grid.route(0, 1);
    EXPECT_EQ(direct, (std::vector<ClusterId>{0, 1}));
    const auto diagonal = grid.route(0, 3);
    ASSERT_EQ(diagonal.size(), 3u);
    EXPECT_EQ(diagonal.front(), 0);
    EXPECT_EQ(diagonal.back(), 3);
}

TEST(Machine, BusRouteIsDirect)
{
    const MachineDesc machine = busedGpMachine(4, 4, 2);
    EXPECT_EQ(machine.route(3, 0), (std::vector<ClusterId>{3, 0}));
}

TEST(Machine, ValidateRejectsBadMachines)
{
    MachineDesc machine;
    machine.name = "broken";
    EXPECT_DEATH({ machine.validate(); }, "no clusters");

    MachineDesc no_bus = busedGpMachine(2, 2, 1);
    no_bus.numBuses = 0;
    EXPECT_DEATH({ no_bus.validate(); }, "needs buses");

    MachineDesc split = gridMachine();
    split.links = {{0, 1}}; // clusters 2 and 3 stranded
    EXPECT_DEATH({ split.validate(); }, "not connected");
}

TEST(Machine, ConfigNamesAreDescriptive)
{
    EXPECT_EQ(busedGpMachine(2, 2, 1).name, "2c-gp-2b-1p");
    EXPECT_EQ(busedFsMachine(4, 4, 2).name, "4c-fs-4b-2p");
    EXPECT_EQ(gridMachine(2).name, "4c-grid-2p");
}

} // namespace
} // namespace cams
