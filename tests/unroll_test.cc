/**
 * @file
 * Tests for loop unrolling and acyclic list scheduling.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "graph/recmii.hh"
#include "graph/scc.hh"
#include "machine/configs.hh"
#include "pipeline/driver.hh"
#include "transform/unroll.hh"
#include "workload/kernels.hh"

namespace cams
{
namespace
{

TEST(Unroll, FactorOneIsIdentityShape)
{
    Dfg graph = kernelTridiag();
    const Dfg unrolled = unrollLoop(graph, 1);
    EXPECT_EQ(unrolled.numNodes(), graph.numNodes());
    EXPECT_EQ(unrolled.numEdges(), graph.numEdges());
    EXPECT_EQ(recMii(unrolled), recMii(graph));
}

TEST(Unroll, ReplicatesNodesAndRedistributesDistances)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::FpAdd)
                    .op("b", Opcode::FpAdd)
                    .flow("a", "b")
                    .carried("b", "a", 1)
                    .build();
    const Dfg unrolled = unrollLoop(graph, 3);
    EXPECT_EQ(unrolled.numNodes(), 6);
    EXPECT_EQ(unrolled.numEdges(), 6);
    // Of the three carried copies, two become intra-body (distance 0)
    // and one wraps with distance 1.
    int intra = 0;
    int carried = 0;
    for (const DfgEdge &edge : unrolled.edges()) {
        if (edge.distance == 0)
            ++intra;
        else
            ++carried;
    }
    EXPECT_EQ(intra, 5);
    EXPECT_EQ(carried, 1);
    // The recurrence survives unrolling as one big SCC.
    EXPECT_EQ(findSccs(unrolled).numNonTrivial(), 1);
}

TEST(Unroll, DeepDistancesWrapCorrectly)
{
    Dfg graph = DfgBuilder("t")
                    .op("a", Opcode::FpAdd)
                    .carried("a", "a", 3)
                    .build();
    const Dfg unrolled = unrollLoop(graph, 2);
    // Copies 0 and 1 each reach (i+3): node (i+3)%2 with distance
    // (i+3)/2: distances 1 and 2.
    ASSERT_EQ(unrolled.numEdges(), 2);
    std::vector<int> distances = {unrolled.edge(0).distance,
                                  unrolled.edge(1).distance};
    std::sort(distances.begin(), distances.end());
    EXPECT_EQ(distances, (std::vector<int>{1, 2}));
}

TEST(ListSchedule, RespectsDependencesAndWidth)
{
    Dfg graph = kernelHydro();
    const MachineDesc machine = unifiedGpMachine(2);
    const ListScheduleResult result = listSchedule(graph, machine);
    ASSERT_TRUE(result.success);
    for (const DfgEdge &edge : graph.edges()) {
        if (edge.distance != 0)
            continue;
        EXPECT_GE(result.startCycle[edge.dst],
                  result.startCycle[edge.src] + edge.latency);
    }
    // Width 2: at most two ops per cycle.
    std::map<int, int> per_cycle;
    for (NodeId v = 0; v < graph.numNodes(); ++v)
        ++per_cycle[result.startCycle[v]];
    for (const auto &[cycle, count] : per_cycle) {
        (void)cycle;
        EXPECT_LE(count, 2);
    }
    EXPECT_GE(result.length, (graph.numNodes() + 1) / 2);
}

TEST(Throughput, WideBodiesApproachResourceBound)
{
    // Recurrence-free loop: unrolling amortizes the drain, so per-
    // iteration cycles fall toward the modulo II as factors grow.
    Dfg graph = kernelFir4();
    const MachineDesc machine = unifiedGpMachine(8);
    const double x1 = unrolledThroughput(graph, machine, 1);
    const double x8 = unrolledThroughput(graph, machine, 8);
    EXPECT_LT(x8, x1);
    const CompileResult modulo = compileUnified(graph, machine);
    ASSERT_TRUE(modulo.success);
    // Unrolling can beat modulo scheduling's integer-II rounding on
    // resource-bound loops (14 ops on 8 units amortize to 1.75
    // cycles/iter), but never by a full cycle.
    EXPECT_LE(modulo.ii, std::ceil(x8 - 1e-9) + 1e-9);
}

TEST(Throughput, RecurrenceDefeatsUnrolling)
{
    // tridiag's 4-cycle recurrence: unrolling cannot beat RecMII, and
    // the serial body makes it much worse.
    Dfg graph = kernelTridiag();
    const MachineDesc machine = unifiedGpMachine(8);
    const CompileResult modulo = compileUnified(graph, machine);
    ASSERT_TRUE(modulo.success);
    EXPECT_EQ(modulo.ii, 4);
    for (int factor : {1, 2, 4, 8}) {
        EXPECT_GE(unrolledThroughput(graph, machine, factor),
                  4.0 - 1e-9)
            << "factor " << factor;
    }
}

TEST(Throughput, UnrolledLoopsStillWellFormed)
{
    for (const Dfg &kernel : allKernels()) {
        for (int factor : {2, 4}) {
            const Dfg unrolled = unrollLoop(kernel, factor);
            std::string why;
            EXPECT_TRUE(unrolled.wellFormed(&why))
                << kernel.name() << " x" << factor << ": " << why;
            EXPECT_LE(recMii(unrolled), recMii(kernel) * factor);
        }
    }
}

} // namespace
} // namespace cams
